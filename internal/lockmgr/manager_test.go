package lockmgr

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestManager returns a manager with fast deadlock detection and SLI
// disabled unless requested.
func newTestManager(sli bool) *Manager {
	return New(Config{
		SLI:                sli,
		DeadlockCheckEvery: time.Millisecond,
		LockTimeout:        5 * time.Second,
	})
}

func mustLock(t *testing.T, o *Owner, id LockID, mode Mode) {
	t.Helper()
	if err := o.Lock(id, mode); err != nil {
		t.Fatalf("Lock(%v,%v): %v", id, mode, err)
	}
}

func TestLockGrantAndRelease(t *testing.T) {
	m := newTestManager(false)
	o := m.NewOwner(nil, nil)
	rec := RecordLock(1, 10, 5, 1)
	mustLock(t, o, rec, S)
	if got := o.HeldMode(rec); got != S {
		t.Fatalf("held mode = %v, want S", got)
	}
	// Intention locks must have been acquired automatically on all ancestors.
	if got := o.HeldMode(PageLock(1, 10, 5)); got != IS {
		t.Fatalf("page lock = %v, want IS", got)
	}
	if got := o.HeldMode(TableLock(1, 10)); got != IS {
		t.Fatalf("table lock = %v, want IS", got)
	}
	if got := o.HeldMode(DatabaseLock(1)); got != IS {
		t.Fatalf("database lock = %v, want IS", got)
	}
	if o.HeldCount() != 4 {
		t.Fatalf("held count = %d, want 4", o.HeldCount())
	}
	o.ReleaseAll()
	if m.ActiveLocks() != 0 {
		t.Fatalf("active locks after release = %d, want 0", m.ActiveLocks())
	}
}

func TestExclusiveChildTakesIXParents(t *testing.T) {
	m := newTestManager(false)
	o := m.NewOwner(nil, nil)
	mustLock(t, o, RecordLock(1, 3, 9, 2), X)
	if got := o.HeldMode(PageLock(1, 3, 9)); got != IX {
		t.Fatalf("page lock = %v, want IX", got)
	}
	if got := o.HeldMode(TableLock(1, 3)); got != IX {
		t.Fatalf("table lock = %v, want IX", got)
	}
	o.ReleaseAll()
}

func TestRepeatedLockIsCacheHit(t *testing.T) {
	m := newTestManager(false)
	o := m.NewOwner(nil, nil)
	rec := RecordLock(1, 1, 1, 1)
	mustLock(t, o, rec, S)
	before := m.Stats().Snapshot()
	mustLock(t, o, rec, S)
	mustLock(t, o, rec, IS) // weaker: still covered
	after := m.Stats().Snapshot()
	// Each re-request hits the cache for the record and its three ancestors.
	if after.CacheHits-before.CacheHits != 8 {
		t.Fatalf("cache hits delta = %d, want 8", after.CacheHits-before.CacheHits)
	}
	if after.TotalAcquires() != before.TotalAcquires() {
		t.Fatal("covered re-requests must not count as new acquisitions")
	}
	o.ReleaseAll()
}

func TestLockModeNLIsNoOp(t *testing.T) {
	m := newTestManager(false)
	o := m.NewOwner(nil, nil)
	if err := o.Lock(TableLock(1, 1), NL); err != nil {
		t.Fatal(err)
	}
	if o.HeldCount() != 0 {
		t.Fatal("NL request must not acquire anything")
	}
	if err := o.Lock(TableLock(1, 1), Mode(99)); err == nil {
		t.Fatal("invalid mode must be rejected")
	}
	o.ReleaseAll()
}

func TestLockAfterFinishFails(t *testing.T) {
	m := newTestManager(false)
	o := m.NewOwner(nil, nil)
	mustLock(t, o, TableLock(1, 1), IS)
	o.ReleaseAll()
	o.ReleaseAll() // idempotent
	if err := o.Lock(TableLock(1, 1), IS); !errors.Is(err, ErrOwnerFinished) {
		t.Fatalf("err = %v, want ErrOwnerFinished", err)
	}
}

func TestSharedModesDoNotBlockEachOther(t *testing.T) {
	m := newTestManager(false)
	tbl := TableLock(1, 7)
	var owners []*Owner
	for i := 0; i < 8; i++ {
		o := m.NewOwner(nil, nil)
		owners = append(owners, o)
		done := make(chan error, 1)
		go func() { done <- o.Lock(tbl, IS) }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("IS request %d blocked behind other IS holders", i)
		}
	}
	for _, o := range owners {
		o.ReleaseAll()
	}
}

func TestExclusiveBlocksAndIsGrantedOnRelease(t *testing.T) {
	m := newTestManager(false)
	tbl := TableLock(1, 2)
	reader := m.NewOwner(nil, nil)
	mustLock(t, reader, tbl, S)

	writer := m.NewOwner(nil, nil)
	granted := make(chan error, 1)
	go func() { granted <- writer.Lock(tbl, X) }()

	select {
	case err := <-granted:
		t.Fatalf("X lock granted while S held (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if m.Stats().Snapshot().Waits == 0 {
		t.Fatal("expected the writer to be counted as waiting")
	}
	reader.ReleaseAll()
	select {
	case err := <-granted:
		if err != nil {
			t.Fatalf("writer lock after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writer never granted after reader released")
	}
	writer.ReleaseAll()
}

func TestFIFOPreventsStarvationOfWriter(t *testing.T) {
	m := newTestManager(false)
	tbl := TableLock(1, 4)
	r1 := m.NewOwner(nil, nil)
	mustLock(t, r1, tbl, S)

	writer := m.NewOwner(nil, nil)
	wDone := make(chan error, 1)
	go func() { wDone <- writer.Lock(tbl, X) }()
	time.Sleep(20 * time.Millisecond) // let the writer enqueue

	// A reader arriving after the writer must not jump the queue.
	r2 := m.NewOwner(nil, nil)
	rDone := make(chan error, 1)
	go func() { rDone <- r2.Lock(tbl, S) }()

	select {
	case <-rDone:
		t.Fatal("late reader granted ahead of waiting writer (starvation)")
	case <-time.After(50 * time.Millisecond):
	}

	r1.ReleaseAll()
	if err := <-wDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	writer.ReleaseAll()
	if err := <-rDone; err != nil {
		t.Fatalf("late reader: %v", err)
	}
	r2.ReleaseAll()
}

func TestConversionISToIX(t *testing.T) {
	m := newTestManager(false)
	o := m.NewOwner(nil, nil)
	tbl := TableLock(1, 9)
	mustLock(t, o, RecordLock(1, 9, 1, 1), S) // takes IS on the table
	if o.HeldMode(tbl) != IS {
		t.Fatalf("table mode = %v, want IS", o.HeldMode(tbl))
	}
	mustLock(t, o, RecordLock(1, 9, 1, 2), X) // upgrades the table to IX
	if o.HeldMode(tbl) != IX {
		t.Fatalf("table mode after upgrade = %v, want IX", o.HeldMode(tbl))
	}
	if m.Stats().Snapshot().Conversions == 0 {
		t.Fatal("conversion counter not incremented")
	}
	o.ReleaseAll()
}

func TestConversionSToXWaitsForOtherReader(t *testing.T) {
	m := newTestManager(false)
	pg := PageLock(1, 5, 1)
	a := m.NewOwner(nil, nil)
	b := m.NewOwner(nil, nil)
	mustLock(t, a, pg, S)
	mustLock(t, b, pg, S)

	up := make(chan error, 1)
	go func() { up <- a.Lock(pg, X) }()
	select {
	case err := <-up:
		t.Fatalf("upgrade granted while another reader holds S (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	b.ReleaseAll()
	if err := <-up; err != nil {
		t.Fatalf("upgrade after other reader left: %v", err)
	}
	if a.HeldMode(pg) != X {
		t.Fatalf("mode after upgrade = %v, want X", a.HeldMode(pg))
	}
	a.ReleaseAll()
}

func TestConversionDeadlockDetected(t *testing.T) {
	// Two transactions hold S and both try to upgrade to X: a classic
	// conversion deadlock. One of them must be aborted.
	m := newTestManager(false)
	pg := PageLock(1, 6, 1)
	a := m.NewOwner(nil, nil)
	b := m.NewOwner(nil, nil)
	mustLock(t, a, pg, S)
	mustLock(t, b, pg, S)

	errs := make(chan error, 2)
	go func() { errs <- a.Lock(pg, X) }()
	go func() { errs <- b.Lock(pg, X) }()

	var deadlocks, grants int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			switch {
			case err == nil:
				grants++
			case errors.Is(err, ErrDeadlock) || errors.Is(err, ErrLockTimeout):
				deadlocks++
				// The victim aborts, releasing its locks and unblocking the peer.
				if deadlocks == 1 {
					if a.waiting.Load() == nil && !a.finished {
						a.ReleaseAll()
					} else {
						b.ReleaseAll()
					}
				}
			default:
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(8 * time.Second):
			t.Fatal("conversion deadlock not resolved")
		}
	}
	if deadlocks == 0 {
		t.Fatal("expected at least one deadlock victim")
	}
	if m.Stats().Snapshot().Deadlocks == 0 && m.Stats().Snapshot().Timeouts == 0 {
		t.Fatal("deadlock/timeout counters not incremented")
	}
}

func TestTwoLockCycleDeadlockDetected(t *testing.T) {
	m := newTestManager(false)
	l1 := TableLock(1, 101)
	l2 := TableLock(1, 102)
	a := m.NewOwner(nil, nil)
	b := m.NewOwner(nil, nil)
	mustLock(t, a, l1, X)
	mustLock(t, b, l2, X)

	results := make(chan error, 2)
	go func() { results <- a.Lock(l2, X) }()
	go func() { results <- b.Lock(l1, X) }()

	var victim bool
	for i := 0; i < 2; i++ {
		select {
		case err := <-results:
			if err != nil {
				if !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrLockTimeout) {
					t.Fatalf("unexpected error %v", err)
				}
				victim = true
				// Abort whichever transaction was the victim so the other can finish.
				if a.waiting.Load() == nil && !a.finished {
					a.ReleaseAll()
				} else if !b.finished {
					b.ReleaseAll()
				}
			}
		case <-time.After(8 * time.Second):
			t.Fatal("deadlock never resolved")
		}
	}
	if !victim {
		t.Fatal("expected one transaction to be chosen as deadlock victim")
	}
}

func TestLockTimeout(t *testing.T) {
	m := New(Config{DeadlockCheckEvery: time.Millisecond, LockTimeout: 30 * time.Millisecond})
	holder := m.NewOwner(nil, nil)
	mustLock(t, holder, TableLock(1, 1), X)
	waiter := m.NewOwner(nil, nil)
	start := time.Now()
	err := waiter.Lock(TableLock(1, 1), X)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far longer than configured")
	}
	holder.ReleaseAll()
	waiter.ReleaseAll()
}

func TestReleaseWakesMultipleCompatibleWaiters(t *testing.T) {
	m := newTestManager(false)
	tbl := TableLock(1, 55)
	w := m.NewOwner(nil, nil)
	mustLock(t, w, tbl, X)

	const readers = 6
	var wg sync.WaitGroup
	errs := make([]error, readers)
	owners := make([]*Owner, readers)
	for i := 0; i < readers; i++ {
		owners[i] = m.NewOwner(nil, nil)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = owners[i].Lock(tbl, S)
		}(i)
	}
	time.Sleep(30 * time.Millisecond)
	w.ReleaseAll()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	for _, o := range owners {
		o.ReleaseAll()
	}
}

func TestStatsClassification(t *testing.T) {
	m := newTestManager(false)
	o := m.NewOwner(nil, nil)
	mustLock(t, o, RecordLock(1, 1, 1, 1), S) // 3 shared high-level + 1 row
	mustLock(t, o, RecordLock(1, 1, 1, 2), X) // conversions + 1 row exclusive
	o.ReleaseAll()
	s := m.Stats().Snapshot()
	if s.AcquiresByLevel[LevelRecord] != 2 {
		t.Fatalf("record acquires = %d, want 2", s.AcquiresByLevel[LevelRecord])
	}
	if s.AcquiresByLevel[LevelDatabase] == 0 || s.AcquiresByLevel[LevelTable] == 0 || s.AcquiresByLevel[LevelPage] == 0 {
		t.Fatal("high-level acquisitions missing from stats")
	}
	if s.ExclusiveAcquires == 0 || s.SharedAcquires == 0 {
		t.Fatal("shared/exclusive classification missing")
	}
	if s.Transactions != 1 {
		t.Fatalf("transactions = %d, want 1", s.Transactions)
	}
	if s.LocksPerTransaction() < 4 {
		t.Fatalf("locks per transaction = %v, want >= 4", s.LocksPerTransaction())
	}
	if d := s.Diff(s); d.TotalAcquires() != 0 || d.Transactions != 0 {
		t.Fatal("Diff of identical snapshots must be zero")
	}
}

func TestHotDetection(t *testing.T) {
	m := newTestManager(false)
	tbl := TableLock(1, 77)
	if m.IsHot(tbl) {
		t.Fatal("lock must not be hot before any acquisition")
	}
	m.ForceHot(tbl)
	if !m.IsHot(tbl) {
		t.Fatal("ForceHot must mark the lock hot")
	}
	if m.IsHot(TableLock(1, 78)) {
		t.Fatal("unknown lock must not be hot")
	}
}

func TestHotDetectionFromRealContention(t *testing.T) {
	// Hammer a single table lock from many goroutines; the contention window
	// should eventually mark it hot without any manual help.
	m := newTestManager(false)
	tbl := TableLock(1, 88)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				o := m.NewOwner(nil, nil)
				if err := o.Lock(tbl, IS); err != nil {
					t.Error(err)
					return
				}
				o.ReleaseAll()
			}
		}()
	}
	deadline := time.After(5 * time.Second)
	for !m.IsHot(tbl) {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Skip("no latch contention observed on this machine; hot detection not exercised")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentRandomWorkloadInvariant runs many goroutines acquiring
// random record locks (shared or exclusive). The invariant checked is mutual
// exclusion of X record locks: the lock manager must never allow two owners
// to hold the same record exclusively at once.
func TestConcurrentRandomWorkloadInvariant(t *testing.T) {
	m := newTestManager(false)
	const (
		goroutines = 12
		iters      = 150
		tables     = 2
		pages      = 3
		slots      = 4
	)
	var holders [tables][pages][slots]atomic.Int32
	var wg sync.WaitGroup
	var failures atomic.Int32
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				o := m.NewOwner(nil, nil)
				n := 1 + rng.Intn(3)
				type held struct{ tb, pg, sl int }
				var mine []held
				alreadyMine := func(tb, pg, sl int) bool {
					for _, h := range mine {
						if h.tb == tb && h.pg == pg && h.sl == sl {
							return true
						}
					}
					return false
				}
				for j := 0; j < n; j++ {
					tb, pg, sl := rng.Intn(tables), rng.Intn(pages), rng.Intn(slots)
					id := RecordLock(1, uint32(tb), uint64(pg), uint32(sl))
					if rng.Intn(2) == 0 {
						if err := o.Lock(id, S); err != nil {
							break
						}
					} else {
						if err := o.Lock(id, X); err != nil {
							break
						}
						if alreadyMine(tb, pg, sl) {
							continue // re-locking a record we already hold exclusively
						}
						if !holders[tb][pg][sl].CompareAndSwap(0, 1) {
							failures.Add(1)
						}
						mine = append(mine, held{tb, pg, sl})
					}
				}
				time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
				for _, h := range mine {
					holders[h.tb][h.pg][h.sl].Store(0)
				}
				o.ReleaseAll()
			}
		}(int64(g) * 7919)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d exclusive-lock violations detected", failures.Load())
	}
	if m.ActiveLocks() > 64 {
		// Hot heads are retained; everything else should have been removed.
		t.Fatalf("lock table did not shrink: %d heads active", m.ActiveLocks())
	}
}

func TestConfigDefaults(t *testing.T) {
	m := New(Config{})
	cfg := m.Config()
	if cfg.Partitions <= 0 || cfg.SLIHotThreshold <= 0 || cfg.SLIMinLevel != LevelPage ||
		cfg.DeadlockCheckEvery <= 0 || cfg.LockTimeout <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if m.SLIEnabled() {
		t.Fatal("SLI must default to disabled")
	}
	m.SetSLI(true)
	if !m.SLIEnabled() {
		t.Fatal("SetSLI(true) did not enable SLI")
	}
}

func TestRequestStatusNames(t *testing.T) {
	names := map[int32]string{
		statusWaiting:    "waiting",
		statusConverting: "converting",
		statusGranted:    "granted",
		statusInherited:  "inherited",
		statusInvalid:    "invalid",
	}
	for st, want := range names {
		if statusName(st) != want {
			t.Errorf("statusName(%d) = %q, want %q", st, statusName(st), want)
		}
	}
	if statusName(42) != "unknown" {
		t.Fatal("unknown status must render as unknown")
	}
}

func TestRequestQueueOperations(t *testing.T) {
	var q requestQueue
	if !q.empty() {
		t.Fatal("new queue must be empty")
	}
	reqs := make([]*Request, 5)
	for i := range reqs {
		reqs[i] = &Request{}
		q.pushBack(reqs[i])
	}
	if q.len != 5 {
		t.Fatalf("len = %d, want 5", q.len)
	}
	// Remove the middle, the head and the tail.
	q.remove(reqs[2])
	q.remove(reqs[0])
	q.remove(reqs[4])
	var order []*Request
	q.forEach(func(r *Request) { order = append(order, r) })
	if len(order) != 2 || order[0] != reqs[1] || order[1] != reqs[3] {
		t.Fatalf("queue order wrong after removals: %v", order)
	}
	// Removing twice is harmless.
	q.remove(reqs[2])
	if q.len != 2 {
		t.Fatalf("len = %d after double remove, want 2", q.len)
	}
	q.remove(reqs[1])
	q.remove(reqs[3])
	if !q.empty() {
		t.Fatal("queue must be empty after removing everything")
	}
}

func TestLockTableGrowsAndShrinks(t *testing.T) {
	m := newTestManager(false)
	o := m.NewOwner(nil, nil)
	for i := 0; i < 100; i++ {
		mustLock(t, o, RecordLock(1, 1, uint64(i), 1), S)
	}
	if m.ActiveLocks() < 100 {
		t.Fatalf("active locks = %d, want >= 100", m.ActiveLocks())
	}
	o.ReleaseAll()
	if m.ActiveLocks() != 0 {
		t.Fatalf("active locks after release = %d, want 0", m.ActiveLocks())
	}
}

func TestManyOwnersOnManyTables(t *testing.T) {
	// Smoke test that concurrent transactions over disjoint tables never
	// interfere (fine-grained concurrency works).
	m := newTestManager(false)
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(tbl uint32) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				o := m.NewOwner(nil, nil)
				if err := o.Lock(RecordLock(1, tbl, uint64(i%4), uint32(i)), X); err != nil {
					errCh <- fmt.Errorf("table %d: %w", tbl, err)
				}
				o.ReleaseAll()
			}
		}(uint32(g))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
