package lockmgr

import "sync/atomic"

// Stats holds the lock manager's event counters. They are the
// scheduler-independent metrics used to reproduce Figures 8 and 9 of the
// paper (lock-acquisition breakdowns and SLI outcome breakdowns) and to
// corroborate the time-based profiler results.
//
// All counters are cumulative and safe for concurrent use. Use Snapshot to
// read them consistently enough for reporting and Diff to compute
// per-interval figures.
type Stats struct {
	// Acquisition counters (Figure 8).

	// Acquires counts every lock acquisition that reached the lock manager
	// or was satisfied from the transaction's lock cache, by level.
	Acquires [4]atomic.Uint64
	// SharedAcquires counts acquisitions in SLI-heritable modes (S, IS, IX).
	SharedAcquires atomic.Uint64
	// ExclusiveAcquires counts acquisitions in X, SIX or U mode.
	ExclusiveAcquires atomic.Uint64
	// HotHeritable counts acquisitions of locks that were hot at acquisition
	// time and satisfied SLI criteria 1 and 3 (page level or higher, shared
	// mode): the locks SLI targets.
	HotHeritable atomic.Uint64
	// HotNonHeritable counts acquisitions of hot locks that SLI cannot pass
	// on (row-level or exclusive-mode).
	HotNonHeritable atomic.Uint64
	// ColdHeritable counts acquisitions of high-level shared locks that were
	// not hot at acquisition time.
	ColdHeritable atomic.Uint64
	// ColdOther counts all remaining acquisitions (cold and either row-level
	// or exclusive).
	ColdOther atomic.Uint64
	// CacheHits counts acquisitions satisfied entirely from the
	// transaction's private lock cache (already held in a covering mode).
	CacheHits atomic.Uint64
	// Conversions counts lock upgrades (e.g. IS→IX).
	Conversions atomic.Uint64
	// LatchContended counts lock-head latch acquisitions that found the
	// latch held — the physical-contention signal of §1.1.
	LatchContended atomic.Uint64
	// Waits counts requests that blocked on a logical lock conflict.
	Waits atomic.Uint64
	// Deadlocks counts requests aborted by deadlock detection.
	Deadlocks atomic.Uint64
	// DeadlockLocalProbes counts wait-for-graph probes confined to the
	// blocked request's lock-table partition — the cheap, every-tick search.
	DeadlockLocalProbes atomic.Uint64
	// DeadlockEscalations counts probes that escalated to the full
	// cross-partition wait-for search because a local probe hit an edge
	// leaving its partition. A high escalation:probe ratio means the
	// workload's conflicts do not respect the partitioning.
	DeadlockEscalations atomic.Uint64
	// Timeouts counts requests aborted by lock wait timeout.
	Timeouts atomic.Uint64

	// SLI counters (Figure 9).

	// SLIPassed counts lock requests passed from a committing transaction to
	// its agent thread (inherited) instead of being released.
	SLIPassed atomic.Uint64
	// SLIReclaimed counts inherited requests successfully reclaimed
	// (CAS inherited→granted) by a subsequent transaction — successful
	// speculation.
	SLIReclaimed atomic.Uint64
	// SLIInvalidated counts inherited requests invalidated by a conflicting
	// request (or by an incompatible reclaim attempt) before reuse.
	SLIInvalidated atomic.Uint64
	// SLIDiscarded counts inherited requests that the next transaction never
	// used and therefore released at commit time.
	SLIDiscarded atomic.Uint64
	// SLIIneligibleWaiter counts hot locks that could not be inherited
	// because another transaction was waiting on them (criterion 4).
	SLIIneligibleWaiter atomic.Uint64
	// SLIIneligibleMode counts hot locks that could not be inherited because
	// they were held in an exclusive mode (criterion 3).
	SLIIneligibleMode atomic.Uint64
	// SLIIneligibleParent counts locks that met every criterion except that
	// their parent was not itself eligible (criterion 5).
	SLIIneligibleParent atomic.Uint64

	// ELRReleases counts transactions whose locks were released early (at
	// commit-record append, before the log force) by Early Lock Release.
	ELRReleases atomic.Uint64

	// Transactions counts ReleaseAll calls, i.e. completed transactions,
	// used to compute average locks per transaction.
	Transactions atomic.Uint64
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	AcquiresByLevel     [4]uint64
	SharedAcquires      uint64
	ExclusiveAcquires   uint64
	HotHeritable        uint64
	HotNonHeritable     uint64
	ColdHeritable       uint64
	ColdOther           uint64
	CacheHits           uint64
	Conversions         uint64
	LatchContended      uint64
	Waits               uint64
	Deadlocks           uint64
	DeadlockLocalProbes uint64
	DeadlockEscalations uint64
	Timeouts            uint64
	SLIPassed           uint64
	SLIReclaimed        uint64
	SLIInvalidated      uint64
	SLIDiscarded        uint64
	SLIIneligibleWaiter uint64
	SLIIneligibleMode   uint64
	SLIIneligibleParent uint64
	ELRReleases         uint64
	Transactions        uint64
}

// Snapshot returns a point-in-time copy of all counters.
func (s *Stats) Snapshot() StatsSnapshot {
	var out StatsSnapshot
	for i := range s.Acquires {
		out.AcquiresByLevel[i] = s.Acquires[i].Load()
	}
	out.SharedAcquires = s.SharedAcquires.Load()
	out.ExclusiveAcquires = s.ExclusiveAcquires.Load()
	out.HotHeritable = s.HotHeritable.Load()
	out.HotNonHeritable = s.HotNonHeritable.Load()
	out.ColdHeritable = s.ColdHeritable.Load()
	out.ColdOther = s.ColdOther.Load()
	out.CacheHits = s.CacheHits.Load()
	out.Conversions = s.Conversions.Load()
	out.LatchContended = s.LatchContended.Load()
	out.Waits = s.Waits.Load()
	out.Deadlocks = s.Deadlocks.Load()
	out.DeadlockLocalProbes = s.DeadlockLocalProbes.Load()
	out.DeadlockEscalations = s.DeadlockEscalations.Load()
	out.Timeouts = s.Timeouts.Load()
	out.SLIPassed = s.SLIPassed.Load()
	out.SLIReclaimed = s.SLIReclaimed.Load()
	out.SLIInvalidated = s.SLIInvalidated.Load()
	out.SLIDiscarded = s.SLIDiscarded.Load()
	out.SLIIneligibleWaiter = s.SLIIneligibleWaiter.Load()
	out.SLIIneligibleMode = s.SLIIneligibleMode.Load()
	out.SLIIneligibleParent = s.SLIIneligibleParent.Load()
	out.ELRReleases = s.ELRReleases.Load()
	out.Transactions = s.Transactions.Load()
	return out
}

// TotalAcquires returns the total number of lock acquisitions across all
// levels.
func (s StatsSnapshot) TotalAcquires() uint64 {
	var t uint64
	for _, v := range s.AcquiresByLevel {
		t += v
	}
	return t
}

// LocksPerTransaction returns the average number of lock acquisitions per
// completed transaction (the number printed above each bar of Figure 8).
func (s StatsSnapshot) LocksPerTransaction() float64 {
	if s.Transactions == 0 {
		return 0
	}
	return float64(s.TotalAcquires()) / float64(s.Transactions)
}

// Diff returns the counter deltas s - earlier, clamping at zero; it is used
// to compute per-measurement-interval statistics.
func (s StatsSnapshot) Diff(earlier StatsSnapshot) StatsSnapshot {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	var out StatsSnapshot
	for i := range s.AcquiresByLevel {
		out.AcquiresByLevel[i] = sub(s.AcquiresByLevel[i], earlier.AcquiresByLevel[i])
	}
	out.SharedAcquires = sub(s.SharedAcquires, earlier.SharedAcquires)
	out.ExclusiveAcquires = sub(s.ExclusiveAcquires, earlier.ExclusiveAcquires)
	out.HotHeritable = sub(s.HotHeritable, earlier.HotHeritable)
	out.HotNonHeritable = sub(s.HotNonHeritable, earlier.HotNonHeritable)
	out.ColdHeritable = sub(s.ColdHeritable, earlier.ColdHeritable)
	out.ColdOther = sub(s.ColdOther, earlier.ColdOther)
	out.CacheHits = sub(s.CacheHits, earlier.CacheHits)
	out.Conversions = sub(s.Conversions, earlier.Conversions)
	out.LatchContended = sub(s.LatchContended, earlier.LatchContended)
	out.Waits = sub(s.Waits, earlier.Waits)
	out.Deadlocks = sub(s.Deadlocks, earlier.Deadlocks)
	out.DeadlockLocalProbes = sub(s.DeadlockLocalProbes, earlier.DeadlockLocalProbes)
	out.DeadlockEscalations = sub(s.DeadlockEscalations, earlier.DeadlockEscalations)
	out.Timeouts = sub(s.Timeouts, earlier.Timeouts)
	out.SLIPassed = sub(s.SLIPassed, earlier.SLIPassed)
	out.SLIReclaimed = sub(s.SLIReclaimed, earlier.SLIReclaimed)
	out.SLIInvalidated = sub(s.SLIInvalidated, earlier.SLIInvalidated)
	out.SLIDiscarded = sub(s.SLIDiscarded, earlier.SLIDiscarded)
	out.SLIIneligibleWaiter = sub(s.SLIIneligibleWaiter, earlier.SLIIneligibleWaiter)
	out.SLIIneligibleMode = sub(s.SLIIneligibleMode, earlier.SLIIneligibleMode)
	out.SLIIneligibleParent = sub(s.SLIIneligibleParent, earlier.SLIIneligibleParent)
	out.ELRReleases = sub(s.ELRReleases, earlier.ELRReleases)
	out.Transactions = sub(s.Transactions, earlier.Transactions)
	return out
}

// classify records one lock acquisition in the Figure-8 breakdown counters.
func (s *Stats) classify(id LockID, mode Mode, hot bool) {
	s.Acquires[id.Lvl].Add(1)
	shared := mode.Shared()
	if shared {
		s.SharedAcquires.Add(1)
	} else {
		s.ExclusiveAcquires.Add(1)
	}
	heritable := shared && id.Lvl.CoarserOrEqual(LevelPage)
	switch {
	case hot && heritable:
		s.HotHeritable.Add(1)
	case hot:
		s.HotNonHeritable.Add(1)
	case heritable:
		s.ColdHeritable.Add(1)
	default:
		s.ColdOther.Add(1)
	}
}
