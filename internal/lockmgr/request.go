package lockmgr

import (
	"sync/atomic"
)

// Request status values. Transitions are documented next to each status; the
// interesting ones for SLI are granted → inherited (at release time, under
// the lock-head latch), inherited → granted (reclaim by the next transaction
// on the agent, a single compare-and-swap with no latch — the "fast path" of
// paper §4.1), and inherited → invalid (a conflicting requester or the
// owning agent retires the speculation).
const (
	// statusWaiting: the request is queued behind incompatible holders.
	statusWaiting int32 = iota
	// statusConverting: the owner already holds the lock in req.mode and is
	// waiting to upgrade it to req.convMode.
	statusConverting
	// statusGranted: the request is granted; the owner holds mode req.mode.
	statusGranted
	// statusInherited: the request was passed by a committing transaction to
	// its agent thread and awaits reclaim by the agent's next transaction.
	statusInherited
	// statusInvalid: the request is logically removed; it either has been or
	// is about to be unlinked from the queue by whichever actor made it
	// invalid.
	statusInvalid
)

func statusName(s int32) string {
	switch s {
	case statusWaiting:
		return "waiting"
	case statusConverting:
		return "converting"
	case statusGranted:
		return "granted"
	case statusInherited:
		return "inherited"
	case statusInvalid:
		return "invalid"
	default:
		return "unknown"
	}
}

// Request represents one transaction's (or, while inherited, one agent's)
// interest in a lock. Requests are linked into their lock head's FIFO queue;
// all structural queue changes happen under the lock-head latch, while the
// status field is manipulated with atomic operations so that SLI reclaim can
// bypass the latch entirely.
type Request struct {
	id   LockID
	head *lockHead

	// owner is the transaction currently holding or waiting for the lock.
	// It is nil while the request is inherited (owned by an agent thread)
	// and is only read for deadlock detection and debugging; it is written
	// under the lock-head latch or before the request is published.
	owner atomic.Pointer[Owner]

	// agent is the agent thread whose transactions have used this request.
	// It is set when the request is created and never changes; it is used
	// for SLI bookkeeping and statistics.
	agent *Agent

	// mode is the currently granted mode (for granted/converting/inherited
	// requests) or the requested mode (for waiting requests). It is written
	// only under the lock-head latch or before the request is published,
	// with one exception: the owner reading its own granted request.
	mode Mode

	// convMode is the target mode of an in-progress conversion; only
	// meaningful while status == statusConverting.
	convMode Mode

	status atomic.Int32

	// ready delivers the grant (nil) or an abort error to a waiting owner.
	// Buffered so granters never block.
	ready chan error

	// wasInherited records that this request was at some point passed via
	// SLI, for Figure 9 accounting of discarded (inherited but unused)
	// requests.
	wasInherited bool

	prev, next *Request
}

// newRequest allocates a request for owner o on head h.
func newRequest(h *lockHead, o *Owner, mode Mode, status int32) *Request {
	r := &Request{id: h.id, head: h, agent: o.agent, mode: mode}
	r.owner.Store(o)
	r.status.Store(status)
	if status == statusWaiting || status == statusConverting {
		r.ready = make(chan error, 1)
	}
	return r
}

// Mode returns the currently granted (or requested) mode.
func (r *Request) Mode() Mode { return r.mode }

// ID returns the lock this request refers to.
func (r *Request) ID() LockID { return r.id }

// Status returns the request's current status name, for debugging and tests.
func (r *Request) Status() string { return statusName(r.status.Load()) }

// requestQueue is an intrusive doubly-linked FIFO list of requests. All
// mutations require the enclosing lock head's latch.
type requestQueue struct {
	head, tail *Request
	len        int
}

// pushBack appends r to the queue.
func (q *requestQueue) pushBack(r *Request) {
	r.prev = q.tail
	r.next = nil
	if q.tail != nil {
		q.tail.next = r
	} else {
		q.head = r
	}
	q.tail = r
	q.len++
}

// remove unlinks r from the queue. It is idempotent for requests that have
// already been unlinked (their links are nil and they are not the head).
func (q *requestQueue) remove(r *Request) {
	if r.prev == nil && r.next == nil && q.head != r {
		return // already unlinked
	}
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		q.head = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		q.tail = r.prev
	}
	r.prev, r.next = nil, nil
	q.len--
}

// empty reports whether the queue has no requests.
func (q *requestQueue) empty() bool { return q.head == nil }

// forEach calls fn for every request in FIFO order. fn must not modify the
// queue; use collect-then-mutate patterns for removal during iteration.
func (q *requestQueue) forEach(fn func(*Request)) {
	for r := q.head; r != nil; r = r.next {
		fn(r)
	}
}
