package lockmgr

import (
	"errors"
	"sync"
	"testing"
	"time"

	"slidb/internal/profiler"
)

// runXct executes body as one transaction on the given agent and completes
// it (ReleaseAll), mirroring how an agent thread drives transactions.
func runXct(t *testing.T, m *Manager, a *Agent, body func(o *Owner) error) {
	t.Helper()
	o := m.NewOwner(a, nil)
	if body != nil {
		if err := body(o); err != nil {
			t.Fatalf("transaction body: %v", err)
		}
	}
	o.ReleaseAll()
}

func TestSLIInheritsHotSharedTableLock(t *testing.T) {
	m := newTestManager(true)
	tbl := TableLock(1, 1)
	db := DatabaseLock(1)
	m.ForceHot(tbl)
	m.ForceHot(db)
	agent := m.NewAgent()

	runXct(t, m, agent, func(o *Owner) error { return o.Lock(tbl, IS) })

	if got := agent.PendingInherited(); got != 2 {
		t.Fatalf("pending inherited = %d, want 2 (table + database)", got)
	}
	s := m.Stats().Snapshot()
	if s.SLIPassed != 2 {
		t.Fatalf("SLIPassed = %d, want 2", s.SLIPassed)
	}
	// The inherited requests keep the lock heads alive in the lock table.
	if m.ActiveLocks() < 2 {
		t.Fatalf("inherited requests should keep lock heads alive, got %d", m.ActiveLocks())
	}
}

func TestSLIReclaimBySameAgent(t *testing.T) {
	m := newTestManager(true)
	tbl := TableLock(1, 2)
	m.ForceHot(tbl)
	m.ForceHot(DatabaseLock(1))
	agent := m.NewAgent()

	runXct(t, m, agent, func(o *Owner) error { return o.Lock(tbl, IS) })
	passed := m.Stats().Snapshot().SLIPassed
	if passed == 0 {
		t.Fatal("no locks inherited by agent")
	}

	// The next transaction on the same agent reuses the inherited lock
	// without a lock-manager acquisition.
	o := m.NewOwner(agent, nil)
	if o.InheritedCount() == 0 {
		t.Fatal("new transaction was not seeded with inherited locks")
	}
	if err := o.Lock(tbl, IS); err != nil {
		t.Fatal(err)
	}
	s := m.Stats().Snapshot()
	if s.SLIReclaimed == 0 {
		t.Fatal("reclaim did not happen")
	}
	if o.HeldMode(tbl) != IS {
		t.Fatalf("held mode = %v, want IS", o.HeldMode(tbl))
	}
	o.ReleaseAll()
}

func TestSLIDiscardUnusedInheritedLocks(t *testing.T) {
	m := newTestManager(true)
	tbl := TableLock(1, 3)
	m.ForceHot(tbl)
	m.ForceHot(DatabaseLock(1))
	agent := m.NewAgent()
	runXct(t, m, agent, func(o *Owner) error { return o.Lock(tbl, IS) })
	if agent.PendingInherited() == 0 {
		t.Fatal("nothing inherited")
	}

	// Next transaction never touches the table: the inherited table lock must
	// be released at its commit ("the transaction simply releases them at
	// commit time along with the locks it did use"). The database lock, by
	// contrast, is reused (it is the parent of every table) and is legitimately
	// inherited again.
	runXct(t, m, agent, func(o *Owner) error { return o.Lock(TableLock(1, 99), IS) })
	s := m.Stats().Snapshot()
	if s.SLIDiscarded == 0 {
		t.Fatal("unused inherited locks were not discarded")
	}
	for _, r := range agent.pending {
		if r.id == tbl && r.status.Load() == statusInherited {
			t.Fatal("unused table lock is still parked on the agent")
		}
	}
}

func TestSLIInvalidationByConflictingRequest(t *testing.T) {
	m := newTestManager(true)
	tbl := TableLock(1, 4)
	m.ForceHot(tbl)
	m.ForceHot(DatabaseLock(1))
	agent := m.NewAgent()
	runXct(t, m, agent, func(o *Owner) error { return o.Lock(tbl, IS) })
	if agent.PendingInherited() == 0 {
		t.Fatal("nothing inherited")
	}

	// Another transaction (different agent) requests the table exclusively.
	// It must not block behind the speculative inherited request: it
	// invalidates it and proceeds.
	other := m.NewOwner(nil, nil)
	done := make(chan error, 1)
	go func() { done <- other.Lock(tbl, X) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("exclusive request blocked behind an inherited (unclaimed) lock")
	}
	if m.Stats().Snapshot().SLIInvalidated == 0 {
		t.Fatal("invalidation not recorded")
	}
	other.ReleaseAll()

	// The inheriting agent's next transaction cannot reclaim; it falls back
	// to a normal request and still succeeds.
	o := m.NewOwner(agent, nil)
	if err := o.Lock(tbl, IS); err != nil {
		t.Fatal(err)
	}
	if o.HeldMode(tbl) != IS {
		t.Fatalf("mode = %v, want IS", o.HeldMode(tbl))
	}
	o.ReleaseAll()
}

func TestSLIReclaimNeedsStrongerModeFallsBack(t *testing.T) {
	m := newTestManager(true)
	tbl := TableLock(1, 5)
	m.ForceHot(tbl)
	m.ForceHot(DatabaseLock(1))
	agent := m.NewAgent()
	runXct(t, m, agent, func(o *Owner) error { return o.Lock(tbl, IS) })

	// Next transaction needs IX (stronger than the inherited IS): the
	// speculation is retired and a fresh request made.
	o := m.NewOwner(agent, nil)
	if err := o.Lock(tbl, IX); err != nil {
		t.Fatal(err)
	}
	if o.HeldMode(tbl) != IX {
		t.Fatalf("mode = %v, want IX", o.HeldMode(tbl))
	}
	s := m.Stats().Snapshot()
	if s.SLIInvalidated == 0 {
		t.Fatal("incompatible reclaim should invalidate the inherited request")
	}
	if s.SLIReclaimed != 0 {
		t.Fatal("stronger-mode request must not be counted as a successful reclaim")
	}
	o.ReleaseAll()
}

func TestSLIRowLocksNeverInherited(t *testing.T) {
	m := newTestManager(true)
	rec := RecordLock(1, 6, 1, 1)
	// Make everything hot, including the record.
	m.ForceHot(rec)
	m.ForceHot(PageLock(1, 6, 1))
	m.ForceHot(TableLock(1, 6))
	m.ForceHot(DatabaseLock(1))
	agent := m.NewAgent()
	runXct(t, m, agent, func(o *Owner) error { return o.Lock(rec, S) })

	for _, r := range agent.pending {
		if r.id.Level() == LevelRecord {
			t.Fatal("row-level lock was inherited (violates criterion 1)")
		}
	}
	if agent.PendingInherited() == 0 {
		t.Fatal("page/table/database locks should still be inherited")
	}
}

func TestSLIExclusiveLocksNeverInherited(t *testing.T) {
	m := newTestManager(true)
	tbl := TableLock(1, 7)
	m.ForceHot(tbl)
	m.ForceHot(DatabaseLock(1))
	agent := m.NewAgent()
	// An explicit X table lock must never be inherited. (Its automatically
	// acquired IX parent lock on the database is heritable and may be passed.)
	runXct(t, m, agent, func(o *Owner) error { return o.Lock(tbl, X) })
	for _, r := range agent.pending {
		if r.id == tbl {
			t.Fatal("exclusive table lock was inherited (violates criterion 3)")
		}
	}
	if m.Stats().Snapshot().SLIIneligibleMode == 0 {
		t.Fatal("ineligible-mode counter not incremented")
	}
}

func TestSLIColdLocksNotInherited(t *testing.T) {
	m := newTestManager(true)
	agent := m.NewAgent()
	runXct(t, m, agent, func(o *Owner) error { return o.Lock(TableLock(1, 8), IS) })
	if agent.PendingInherited() != 0 {
		t.Fatal("cold lock was inherited (violates criterion 2)")
	}
}

func TestSLINotAppliedWhenWaiterPresent(t *testing.T) {
	m := newTestManager(true)
	tbl := TableLock(1, 9)
	m.ForceHot(tbl)
	m.ForceHot(DatabaseLock(1))
	agent := m.NewAgent()

	o := m.NewOwner(agent, nil)
	if err := o.Lock(tbl, S); err != nil {
		t.Fatal(err)
	}
	// A writer queues up behind the S lock.
	writer := m.NewOwner(nil, nil)
	wDone := make(chan error, 1)
	go func() { wDone <- writer.Lock(tbl, X) }()
	time.Sleep(20 * time.Millisecond)

	// Committing now must NOT inherit the S table lock (criterion 4) —
	// otherwise the writer would stay blocked behind an idle agent.
	o.ReleaseAll()
	select {
	case err := <-wDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writer stayed blocked: S lock was inherited despite a waiter")
	}
	if m.Stats().Snapshot().SLIIneligibleWaiter == 0 {
		t.Fatal("ineligible-waiter counter not incremented")
	}
	writer.ReleaseAll()
}

func TestSLIParentRule(t *testing.T) {
	m := newTestManager(true)
	// The page is hot but its table is not: the page lock must not be
	// inherited (criterion 5), because that would orphan it.
	pg := PageLock(1, 10, 1)
	m.ForceHot(pg)
	agent := m.NewAgent()
	runXct(t, m, agent, func(o *Owner) error { return o.Lock(pg, IS) })
	if agent.PendingInherited() != 0 {
		t.Fatal("page lock inherited although its parent table lock is not eligible")
	}
	if m.Stats().Snapshot().SLIIneligibleParent == 0 {
		t.Fatal("ineligible-parent counter not incremented")
	}
}

func TestSLIDisabledNothingInherited(t *testing.T) {
	m := newTestManager(false)
	tbl := TableLock(1, 11)
	m.ForceHot(tbl)
	m.ForceHot(DatabaseLock(1))
	agent := m.NewAgent()
	runXct(t, m, agent, func(o *Owner) error { return o.Lock(tbl, IS) })
	if agent.PendingInherited() != 0 {
		t.Fatal("locks inherited although SLI is disabled")
	}
	if m.Stats().Snapshot().SLIPassed != 0 {
		t.Fatal("SLIPassed counter incremented with SLI disabled")
	}
}

func TestSLIDisableWithPendingInheritedDrains(t *testing.T) {
	m := newTestManager(true)
	tbl := TableLock(1, 12)
	m.ForceHot(tbl)
	m.ForceHot(DatabaseLock(1))
	agent := m.NewAgent()
	runXct(t, m, agent, func(o *Owner) error { return o.Lock(tbl, IS) })
	if agent.PendingInherited() == 0 {
		t.Fatal("nothing inherited")
	}
	m.SetSLI(false)
	// Starting the next transaction retires the parked inheritances.
	o := m.NewOwner(agent, nil)
	o.ReleaseAll()
	if agent.PendingInherited() != 0 {
		t.Fatal("pending inherited locks not drained after disabling SLI")
	}
	if m.ActiveLocks() != 0 {
		t.Fatalf("lock table still has %d heads", m.ActiveLocks())
	}
}

// TestSLIInducedDeadlockAvoided reproduces the Figure 4 scenario: agent T1
// inherits L1 from a previous transaction, then T1's next transaction locks
// L2 before (re)claiming L1 while T2 locks L2 then L1 in the natural order.
// Because an exclusive request invalidates the unclaimed inheritance, no
// deadlock may occur.
func TestSLIInducedDeadlockAvoided(t *testing.T) {
	m := newTestManager(true)
	l1 := TableLock(1, 21)
	l2 := TableLock(1, 22)
	m.ForceHot(l1)
	m.ForceHot(DatabaseLock(1))

	agentT1 := m.NewAgent()
	// A previous transaction on T1 uses L1 in shared mode; L1 is inherited.
	runXct(t, m, agentT1, func(o *Owner) error { return o.Lock(l1, IS) })
	if agentT1.PendingInherited() == 0 {
		t.Fatal("precondition failed: L1 not inherited")
	}

	// T1's next transaction will lock L2 then (only later) L1 — the reversed
	// order Figure 4 warns about. T2 locks L2 exclusively then L1 exclusively.
	t1 := m.NewOwner(agentT1, nil)
	t2 := m.NewOwner(nil, nil)

	if err := t2.Lock(l2, X); err != nil {
		t.Fatal(err)
	}
	// T1 blocks on L2 (held by T2).
	t1Done := make(chan error, 1)
	go func() { t1Done <- t1.Lock(l2, S) }()
	time.Sleep(20 * time.Millisecond)

	// T2 now requests L1 exclusively. Without invalidation this would
	// deadlock: T2 waits on the inherited L1 while T1 waits on L2. With SLI's
	// invalidation rule, T2's X request retires the speculation and proceeds.
	if err := t2.Lock(l1, X); err != nil {
		t.Fatalf("T2 could not acquire L1: %v (SLI-induced deadlock?)", err)
	}
	t2.ReleaseAll()

	if err := <-t1Done; err != nil {
		t.Fatalf("T1 lock on L2 failed: %v", err)
	}
	// T1 can still take L1 normally afterwards.
	if err := t1.Lock(l1, S); err != nil {
		t.Fatal(err)
	}
	t1.ReleaseAll()
	if m.Stats().Snapshot().Deadlocks != 0 {
		t.Fatal("a deadlock occurred; SLI invalidation should have prevented it")
	}
}

// TestSLIContendedThroughputBehaviour runs many agents against one hot table
// and checks that with SLI enabled the lock manager sees far fewer slow-path
// acquisitions for the table lock than without SLI — the mechanism behind
// the paper's Figure 10/11 results.
func TestSLIContendedThroughputBehaviour(t *testing.T) {
	run := func(sli bool) (slowPath uint64) {
		m := newTestManager(sli)
		tbl := TableLock(1, 30)
		m.ForceHot(tbl)
		m.ForceHot(DatabaseLock(1))
		const agents = 8
		const xctsPerAgent = 200
		var wg sync.WaitGroup
		for a := 0; a < agents; a++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				agent := m.NewAgent()
				for i := 0; i < xctsPerAgent; i++ {
					o := m.NewOwner(agent, nil)
					if err := o.Lock(tbl, IS); err != nil {
						t.Error(err)
					}
					o.ReleaseAll()
				}
			}()
		}
		wg.Wait()
		s := m.Stats().Snapshot()
		// Slow-path acquisitions = total acquisitions - reclaimed.
		return s.TotalAcquires() - s.SLIReclaimed
	}
	base := run(false)
	withSLI := run(true)
	if withSLI >= base {
		t.Fatalf("SLI did not reduce lock-manager acquisitions: base=%d sli=%d", base, withSLI)
	}
}

func TestSLIProfilerAttribution(t *testing.T) {
	m := newTestManager(true)
	p := profiler.New(true)
	h := p.NewHandle()
	tbl := TableLock(1, 41)
	m.ForceHot(tbl)
	m.ForceHot(DatabaseLock(1))
	agent := m.NewAgent()

	o := m.NewOwner(agent, h)
	if err := o.Lock(tbl, IS); err != nil {
		t.Fatal(err)
	}
	o.ReleaseAll()
	o = m.NewOwner(agent, h)
	if err := o.Lock(tbl, IS); err != nil {
		t.Fatal(err)
	}
	o.ReleaseAll()

	b := p.Aggregate()
	if b.Get(profiler.LockMgrWork) == 0 {
		t.Fatal("no lock-manager work recorded")
	}
	if b.Get(profiler.SLIWork) == 0 {
		t.Fatal("no SLI work recorded despite inheritance and reclaim")
	}
}

func TestAgentPendingInheritedNilSafe(t *testing.T) {
	var a *Agent
	if a.PendingInherited() != 0 {
		t.Fatal("nil agent must report zero pending inherited locks")
	}
}

func TestSLIRoundTripManyTransactions(t *testing.T) {
	// Long chain of transactions on one agent alternating between using and
	// ignoring the hot table; the lock table must never leak requests.
	m := newTestManager(true)
	hotTbl := TableLock(1, 50)
	coldTbl := TableLock(1, 51)
	m.ForceHot(hotTbl)
	m.ForceHot(DatabaseLock(1))
	agent := m.NewAgent()
	for i := 0; i < 200; i++ {
		o := m.NewOwner(agent, nil)
		var err error
		if i%3 == 0 {
			err = o.Lock(coldTbl, IS)
		} else {
			err = o.Lock(hotTbl, IS)
		}
		if err != nil {
			t.Fatal(err)
		}
		o.ReleaseAll()
	}
	s := m.Stats().Snapshot()
	if s.SLIPassed == 0 || s.SLIReclaimed == 0 || s.SLIDiscarded == 0 {
		t.Fatalf("expected a mix of SLI outcomes, got %+v", s)
	}
	// Drain the last pending inheritance and verify nothing leaked.
	m.SetSLI(false)
	o := m.NewOwner(agent, nil)
	o.ReleaseAll()
	if m.ActiveLocks() != 0 {
		t.Fatalf("%d lock heads leaked", m.ActiveLocks())
	}
}

func TestSLIConcurrentAgentsWithWriterMix(t *testing.T) {
	// Several agents read a hot table via SLI while occasional writers take
	// the table exclusively. Exercises invalidation racing against reclaim.
	m := newTestManager(true)
	tbl := TableLock(1, 60)
	m.ForceHot(tbl)
	m.ForceHot(DatabaseLock(1))
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for a := 0; a < 6; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			agent := m.NewAgent()
			for i := 0; i < 300; i++ {
				o := m.NewOwner(agent, nil)
				if err := o.Lock(tbl, IS); err != nil {
					errCh <- err
				}
				o.ReleaseAll()
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				o := m.NewOwner(nil, nil)
				if err := o.Lock(tbl, X); err != nil && !errors.Is(err, ErrDeadlock) {
					errCh <- err
				}
				time.Sleep(time.Millisecond)
				o.ReleaseAll()
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	s := m.Stats().Snapshot()
	if s.SLIPassed == 0 {
		t.Fatal("no inheritance happened under concurrent load")
	}
	// Invalidation by a writer is timing-dependent here (the deterministic
	// case is covered by TestSLIInvalidationByConflictingRequest); what must
	// hold is that every speculation was eventually resolved one way or
	// another rather than leaking.
	if resolved := s.SLIReclaimed + s.SLIInvalidated + s.SLIDiscarded; resolved == 0 {
		t.Fatal("no SLI speculation was ever resolved")
	}
}
