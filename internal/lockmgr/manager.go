package lockmgr

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"slidb/internal/latch"
	"slidb/internal/profiler"
)

// Errors returned by lock acquisition.
var (
	// ErrDeadlock is returned to a transaction chosen as a deadlock victim;
	// the transaction must abort and release its locks.
	ErrDeadlock = errors.New("lockmgr: deadlock detected")
	// ErrLockTimeout is returned when a lock wait exceeds Config.LockTimeout.
	ErrLockTimeout = errors.New("lockmgr: lock wait timeout")
	// ErrOwnerFinished is returned when a finished (committed/aborted) owner
	// attempts to acquire more locks.
	ErrOwnerFinished = errors.New("lockmgr: transaction already released its locks")
)

// Config controls the lock manager and the SLI policy knobs that the paper's
// §4.2 calls out (hot threshold, eligible levels).
type Config struct {
	// Partitions is the number of shards of the lock hash table
	// (rounded up to a power of two). Default 128.
	Partitions int
	// SLI enables Speculative Lock Inheritance. It can also be toggled at
	// runtime with Manager.SetSLI.
	SLI bool
	// SLIHotThreshold is the fraction of recent lock-head latch acquisitions
	// that must have been contended for the lock to be considered "hot"
	// (criterion 2). Default 0.25.
	SLIHotThreshold float64
	// SLIMinLevel is the finest hierarchy level eligible for inheritance
	// (criterion 1). Default LevelPage ("page-level or higher").
	SLIMinLevel Level
	// DeadlockCheckEvery is how often a blocked transaction probes the
	// wait-for graph for cycles. Default 2ms.
	DeadlockCheckEvery time.Duration
	// LockTimeout aborts lock waits that exceed it; 0 disables the timeout.
	// Default 10s.
	LockTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Partitions <= 0 {
		c.Partitions = 128
	}
	if c.SLIHotThreshold <= 0 {
		c.SLIHotThreshold = 0.25
	}
	if c.SLIMinLevel == 0 {
		c.SLIMinLevel = LevelPage
	}
	if c.DeadlockCheckEvery <= 0 {
		c.DeadlockCheckEvery = 2 * time.Millisecond
	}
	if c.LockTimeout == 0 {
		c.LockTimeout = 10 * time.Second
	}
	return c
}

// Manager is the centralized hierarchical lock manager (paper §3.2,
// Figure 2) extended with Speculative Lock Inheritance (§4).
type Manager struct {
	cfg   Config
	table *lockTable
	stats Stats

	sliEnabled  atomic.Bool
	nextOwnerID atomic.Uint64
	nextAgentID atomic.Uint64
}

// New creates a lock manager with the given configuration.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{cfg: cfg, table: newLockTable(cfg.Partitions)}
	m.sliEnabled.Store(cfg.SLI)
	return m
}

// Stats returns the manager's cumulative event counters.
func (m *Manager) Stats() *Stats { return &m.stats }

// Config returns the effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// SetSLI enables or disables Speculative Lock Inheritance at runtime.
// Disabling SLI stops new inheritances immediately; requests already
// inherited drain naturally (they are reclaimed, invalidated or discarded).
func (m *Manager) SetSLI(enabled bool) { m.sliEnabled.Store(enabled) }

// SLIEnabled reports whether Speculative Lock Inheritance is active.
func (m *Manager) SLIEnabled() bool { return m.sliEnabled.Load() }

// ActiveLocks returns the number of lock heads currently in the lock table.
func (m *Manager) ActiveLocks() int { return m.table.size() }

// IsHot reports whether the lock identified by id is currently classified as
// hot. It is primarily a testing and monitoring hook.
func (m *Manager) IsHot(id LockID) bool {
	h := m.table.find(id)
	if h == nil {
		return false
	}
	return h.hot.Load()
}

// ForceHot marks the lock identified by id as hot (creating its lock head if
// necessary) by saturating its contention window. It exists so tests and
// ablation benchmarks can exercise SLI deterministically without having to
// generate real latch contention first.
func (m *Manager) ForceHot(id LockID) {
	h := m.table.findOrCreate(id)
	h.latch.Lock()
	for i := 0; i < latch.WindowSize; i++ {
		h.recordLatchAcquire(true, m.cfg.SLIHotThreshold)
	}
	h.latch.Unlock()
}

// Agent represents an agent (worker) thread. Agents hold the thread-local
// list of inherited lock requests between transactions (paper §4.1: "moves
// it ... to a different private list owned by the transaction's agent
// thread"). An Agent must only be used by one goroutine at a time.
type Agent struct {
	id      uint64
	mgr     *Manager
	pending []*Request
}

// NewAgent creates an agent context. Each worker goroutine that executes
// transactions should own exactly one Agent.
func (m *Manager) NewAgent() *Agent {
	return &Agent{id: m.nextAgentID.Add(1), mgr: m}
}

// ID returns the agent's identifier.
func (a *Agent) ID() uint64 { return a.id }

// PendingInherited returns the number of inherited lock requests currently
// parked on the agent, awaiting the agent's next transaction.
func (a *Agent) PendingInherited() int {
	if a == nil {
		return 0
	}
	n := 0
	for _, r := range a.pending {
		if r.status.Load() == statusInherited {
			n++
		}
	}
	return n
}

// attach seeds a new transaction's lock cache with the agent's inherited
// requests ("it pre-populates the new transaction's lock cache with the
// inherited locks", §4.1). Requests invalidated while the agent was between
// transactions are simply dropped; the invalidator already unlinked them.
func (a *Agent) attach(o *Owner) {
	if a == nil || len(a.pending) == 0 {
		return
	}
	for _, req := range a.pending {
		if req.status.Load() != statusInherited {
			continue
		}
		o.cache[req.id] = req
		o.inherited[req.id] = req
	}
	a.pending = a.pending[:0]
}

// Owner is the lock-manager-side context of one transaction: its private
// list of granted requests (in acquisition order), its lock cache, and the
// inherited requests it received from its agent but has not yet reclaimed.
// An Owner is not safe for concurrent use; each transaction runs on a single
// agent goroutine.
type Owner struct {
	id    uint64
	mgr   *Manager
	agent *Agent
	prof  *profiler.Handle

	held      []*Request
	cache     map[LockID]*Request
	inherited map[LockID]*Request

	waiting  atomic.Pointer[Request]
	finished bool
}

// NewOwner creates the locking context for a new transaction running on the
// given agent (which may be nil for detached transactions) and seeds it with
// the agent's inherited locks. prof may be nil.
func (m *Manager) NewOwner(agent *Agent, prof *profiler.Handle) *Owner {
	o := &Owner{
		id:        m.nextOwnerID.Add(1),
		mgr:       m,
		agent:     agent,
		prof:      prof,
		cache:     make(map[LockID]*Request, 16),
		inherited: make(map[LockID]*Request, 8),
	}
	if m.SLIEnabled() {
		start := time.Now()
		agent.attach(o)
		o.prof.Add(profiler.SLIWork, time.Since(start))
	} else if agent != nil && len(agent.pending) > 0 {
		// SLI was turned off with inherited requests outstanding: retire them.
		for _, req := range agent.pending {
			if req.status.CompareAndSwap(statusInherited, statusInvalid) {
				m.unlinkInvalid(o, req)
				m.stats.SLIDiscarded.Add(1)
			}
		}
		agent.pending = agent.pending[:0]
	}
	return o
}

// ID returns the owner's (transaction's) identifier.
func (o *Owner) ID() uint64 { return o.id }

// HeldCount returns the number of locks the transaction currently holds.
func (o *Owner) HeldCount() int { return len(o.held) }

// InheritedCount returns the number of inherited requests seeded into this
// transaction that it has not (yet) reclaimed.
func (o *Owner) InheritedCount() int { return len(o.inherited) }

// HeldMode returns the mode in which the transaction holds the given lock,
// or NL if it does not hold it. Inherited-but-unreclaimed locks report NL.
func (o *Owner) HeldMode(id LockID) Mode {
	req, ok := o.cache[id]
	if !ok {
		return NL
	}
	switch req.status.Load() {
	case statusGranted, statusConverting:
		return req.mode
	default:
		return NL
	}
}

// Lock acquires the lock identified by id in the given mode on behalf of the
// owner, acquiring intention locks on all ancestors first. It blocks until
// the lock is granted or the request is aborted by deadlock detection or
// timeout.
func (o *Owner) Lock(id LockID, mode Mode) error { return o.mgr.Lock(o, id, mode) }

// ReleaseAll releases every lock the owner holds, applying Speculative Lock
// Inheritance to eligible locks. It is called exactly once, at transaction
// completion (commit or abort).
func (o *Owner) ReleaseAll() { o.mgr.ReleaseAll(o) }

// ReleaseAllEarly is ReleaseAll invoked under Early Lock Release once the
// transaction's outcome record — the commit record at pre-commit, or the
// abort record after a fully compensation-logged rollback — has been
// appended to the log but is not yet durable. The release path is identical
// — SLI inheritance still applies, so hot locks pass to the agent's next
// transaction without waiting for the fsync — but the event is counted
// separately so ablations and tests can verify that no lock is held across
// a log flush.
func (o *Owner) ReleaseAllEarly() {
	if o.finished {
		return
	}
	o.mgr.stats.ELRReleases.Add(1)
	o.mgr.ReleaseAll(o)
}

// Lock acquires id in the requested mode for owner o. See Owner.Lock.
func (m *Manager) Lock(o *Owner, id LockID, mode Mode) error {
	if mode == NL {
		return nil
	}
	if !mode.Valid() {
		return fmt.Errorf("lockmgr: invalid lock mode %d", mode)
	}
	if o.finished {
		return ErrOwnerFinished
	}
	// Ensure the proper intention locks are held on every ancestor
	// ("the manager first ensures the transaction holds higher-level
	// intention locks, requesting them automatically if necessary", §3.2).
	if parent, ok := id.Parent(); ok {
		if err := m.Lock(o, parent, ParentMode(mode)); err != nil {
			return err
		}
	}
	if req, ok := o.cache[id]; ok {
		switch req.status.Load() {
		case statusGranted:
			if Covers(req.mode, mode) {
				m.stats.CacheHits.Add(1)
				return nil
			}
			return m.convert(o, req, mode)
		case statusInherited:
			return m.reclaim(o, req, mode)
		default: // invalidated while cached
			delete(o.cache, id)
			delete(o.inherited, id)
		}
	}
	return m.lockSlow(o, id, mode)
}

// lockSlow performs a full lock-manager acquisition: find or create the lock
// head, latch it, invalidate incompatible inherited requests, and either
// grant immediately or enqueue and wait.
func (m *Manager) lockSlow(o *Owner, id LockID, mode Mode) error {
	workStart := time.Now()
	var req *Request
	var granted bool
	for {
		h := m.table.findOrCreate(id)
		contended, wait := h.latch.Lock()
		if wait > 0 {
			o.prof.Add(profiler.LockMgrContention, wait)
		}
		if contended {
			m.stats.LatchContended.Add(1)
		}
		if h.dead {
			h.latch.Unlock()
			continue
		}
		h.recordLatchAcquire(contended, m.cfg.SLIHotThreshold)
		m.stats.classify(id, mode, h.hot.Load())

		// Retire any inherited requests that conflict with this request
		// (paper §4.1: the conflicting requester invalidates and unlinks).
		m.invalidateIncompatible(o, h, mode)

		agg := h.grantedSupremum(nil)
		granted = Compatible(mode, agg) && !h.hasWaiters()
		if granted {
			req = newRequest(h, o, mode, statusGranted)
		} else {
			req = newRequest(h, o, mode, statusWaiting)
			h.waiters++
		}
		h.queue.pushBack(req)
		h.latch.Unlock()
		break
	}
	o.prof.Add(profiler.LockMgrWork, time.Since(workStart))
	if granted {
		o.cache[id] = req
		o.held = append(o.held, req)
		return nil
	}
	m.stats.Waits.Add(1)
	return m.waitFor(o, req, false)
}

// convert upgrades an already-held request to cover the wanted mode
// (e.g. IS→IX when a reader turns writer).
func (m *Manager) convert(o *Owner, req *Request, want Mode) error {
	workStart := time.Now()
	target := Supremum(req.mode, want)
	h := req.head
	contended, wait := h.latch.Lock()
	if wait > 0 {
		o.prof.Add(profiler.LockMgrContention, wait)
	}
	if contended {
		m.stats.LatchContended.Add(1)
	}
	h.recordLatchAcquire(contended, m.cfg.SLIHotThreshold)
	m.stats.Conversions.Add(1)
	m.stats.classify(req.id, target, h.hot.Load())
	m.invalidateIncompatible(o, h, target)

	agg := h.grantedSupremum(req)
	if Compatible(target, agg) {
		req.mode = target
		h.latch.Unlock()
		o.prof.Add(profiler.LockMgrWork, time.Since(workStart))
		return nil
	}
	if req.ready == nil {
		req.ready = make(chan error, 1)
	}
	req.convMode = target
	req.status.Store(statusConverting)
	h.waiters++
	h.latch.Unlock()
	o.prof.Add(profiler.LockMgrWork, time.Since(workStart))
	m.stats.Waits.Add(1)
	return m.waitFor(o, req, true)
}

// waitFor blocks the owner until its request is granted, it is chosen as a
// deadlock victim, or the lock wait times out.
func (m *Manager) waitFor(o *Owner, req *Request, isConversion bool) error {
	o.waiting.Store(req)
	defer o.waiting.Store(nil)
	waitStart := time.Now()

	accept := func(err error) error {
		o.prof.Add(profiler.LockWait, time.Since(waitStart))
		if err != nil {
			return err
		}
		if !isConversion {
			o.cache[req.id] = req
			o.held = append(o.held, req)
		}
		return nil
	}

	check := time.NewTimer(m.cfg.DeadlockCheckEvery)
	defer check.Stop()
	var deadlineC <-chan time.Time
	if m.cfg.LockTimeout > 0 {
		deadline := time.NewTimer(m.cfg.LockTimeout)
		defer deadline.Stop()
		deadlineC = deadline.C
	}

	var tick uint64
	for {
		select {
		case err := <-req.ready:
			return accept(err)
		case <-check.C:
			tick++
			if m.detectDeadlock(o, req, tick) {
				if m.cancelWait(o, req, isConversion) {
					m.stats.Deadlocks.Add(1)
					o.prof.Add(profiler.LockWait, time.Since(waitStart))
					return ErrDeadlock
				}
				// The request was granted while we were cancelling; take it.
				return accept(<-req.ready)
			}
			check.Reset(m.cfg.DeadlockCheckEvery)
		case <-deadlineC:
			if m.cancelWait(o, req, isConversion) {
				m.stats.Timeouts.Add(1)
				o.prof.Add(profiler.LockWait, time.Since(waitStart))
				return ErrLockTimeout
			}
			return accept(<-req.ready)
		}
	}
}

// cancelWait aborts a waiting or converting request. It returns true if the
// cancellation took effect and false if the request was granted first (in
// which case a grant notification is already in req.ready).
func (m *Manager) cancelWait(o *Owner, req *Request, isConversion bool) bool {
	h := req.head
	_, wait := h.latch.Lock()
	if wait > 0 {
		o.prof.Add(profiler.LockMgrContention, wait)
	}
	defer h.latch.Unlock()
	switch req.status.Load() {
	case statusWaiting:
		req.status.Store(statusInvalid)
		h.queue.remove(req)
		h.waiters--
	case statusConverting:
		// Revert to the previously held mode; the transaction keeps the lock
		// it already had and will release it when it aborts.
		req.status.Store(statusGranted)
		req.convMode = NL
		h.waiters--
	default:
		return false // already granted
	}
	m.grantWaiters(h)
	m.table.maybeRemove(h)
	return true
}

// invalidateIncompatible retires every inherited request in h's queue that
// is incompatible with a new request for mode. Must be called with h's latch
// held. The caller (the conflicting requester) performs the unlink, per the
// paper's protocol.
func (m *Manager) invalidateIncompatible(o *Owner, h *lockHead, mode Mode) {
	var doomed []*Request
	h.queue.forEach(func(r *Request) {
		if r.status.Load() != statusInherited {
			return
		}
		if Compatible(mode, r.mode) {
			return
		}
		if r.status.CompareAndSwap(statusInherited, statusInvalid) {
			doomed = append(doomed, r)
			m.stats.SLIInvalidated.Add(1)
		}
	})
	for _, r := range doomed {
		h.queue.remove(r)
	}
}

// release removes a granted request from its lock head and grants any
// waiters that become compatible.
func (m *Manager) release(o *Owner, req *Request) {
	workStart := time.Now()
	h := req.head
	contended, wait := h.latch.Lock()
	if wait > 0 {
		o.prof.Add(profiler.LockMgrContention, wait)
	}
	if contended {
		m.stats.LatchContended.Add(1)
	}
	req.status.Store(statusInvalid)
	h.queue.remove(req)
	m.grantWaiters(h)
	m.table.maybeRemove(h)
	h.latch.Unlock()
	work := time.Since(workStart) - wait
	o.prof.Add(profiler.LockMgrWork, work)
}

// unlinkInvalid unlinks a request that the caller has just transitioned to
// the invalid state. o may be nil; it is used only for profiling attribution.
func (m *Manager) unlinkInvalid(o *Owner, req *Request) {
	h := req.head
	_, wait := h.latch.Lock()
	if o != nil && wait > 0 {
		o.prof.Add(profiler.LockMgrContention, wait)
	}
	h.queue.remove(req)
	m.grantWaiters(h)
	m.table.maybeRemove(h)
	h.latch.Unlock()
}

// grantWaiters re-evaluates h's queue after a release or invalidation,
// satisfying pending conversions first and then waiting requests in FIFO
// order (paper §3.2 and Figure 3). Must be called with h's latch held.
func (m *Manager) grantWaiters(h *lockHead) {
	// Conversions first: they are already holders and block everything else.
	for r := h.queue.head; r != nil; r = r.next {
		if r.status.Load() != statusConverting {
			continue
		}
		agg := h.grantedSupremum(r)
		if Compatible(r.convMode, agg) {
			r.mode = r.convMode
			r.convMode = NL
			r.status.Store(statusGranted)
			h.waiters--
			r.ready <- nil
		}
	}
	// Then new requests, stopping at the first that still cannot be granted
	// so it is not starved by later compatible arrivals.
	for r := h.queue.head; r != nil; r = r.next {
		if r.status.Load() != statusWaiting {
			continue
		}
		agg := h.grantedSupremum(r)
		if !Compatible(r.mode, agg) {
			break
		}
		r.status.Store(statusGranted)
		h.waiters--
		r.ready <- nil
	}
}

// ReleaseAll releases all of o's locks at transaction completion, passing
// SLI-eligible locks to o's agent thread instead of releasing them, and
// retiring any inherited requests the transaction never used.
func (m *Manager) ReleaseAll(o *Owner) {
	if o.finished {
		return
	}
	o.finished = true
	m.stats.Transactions.Add(1)

	candidates := m.selectSLICandidates(o)

	// Release youngest-first, mirroring Shore-MT's release order.
	for i := len(o.held) - 1; i >= 0; i-- {
		req := o.held[i]
		if candidates != nil && candidates[req] && m.inherit(o, req) {
			continue
		}
		m.release(o, req)
	}

	// Inherited requests this transaction never reclaimed are released now:
	// "the transaction simply releases them at commit time along with the
	// locks it did use" (§4.1).
	for _, req := range o.inherited {
		m.discardInherited(o, req)
	}

	o.held = nil
	o.cache = nil
	o.inherited = nil
}
