package lockmgr

import "fmt"

// Level identifies the position of a lockable object in the lock hierarchy.
// Lower numeric values are higher (coarser) in the hierarchy.
type Level uint8

// The four levels of the lock hierarchy, mirroring Shore-MT's
// volume → store → page → record granularities.
const (
	// LevelDatabase is the root of the hierarchy (a Shore "volume").
	LevelDatabase Level = iota
	// LevelTable covers one table or index (a Shore "store").
	LevelTable
	// LevelPage covers one data page of a table.
	LevelPage
	// LevelRecord covers a single record (row).
	LevelRecord
)

// String returns the human-readable name of the level.
func (l Level) String() string {
	switch l {
	case LevelDatabase:
		return "database"
	case LevelTable:
		return "table"
	case LevelPage:
		return "page"
	case LevelRecord:
		return "record"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// CoarserOrEqual reports whether l is at or above (coarser than) other in
// the hierarchy. SLI's first eligibility criterion is
// l.CoarserOrEqual(LevelPage): "the lock is page-level or higher".
func (l Level) CoarserOrEqual(other Level) bool { return l <= other }

// LockID names a lockable object. It is a value type usable as a map key.
// Unused components (e.g. Page and Slot for a table-level lock) must be
// zero so that equal objects compare equal.
type LockID struct {
	// Lvl is the object's level in the hierarchy.
	Lvl Level
	// DB identifies the database (volume). The engine currently uses a
	// single database with ID 1.
	DB uint32
	// Table identifies the table or index within the database.
	Table uint32
	// Page identifies the page within the table.
	Page uint64
	// Slot identifies the record within the page.
	Slot uint32
}

// DatabaseLock returns the LockID of a whole database.
func DatabaseLock(db uint32) LockID {
	return LockID{Lvl: LevelDatabase, DB: db}
}

// TableLock returns the LockID of a table within a database.
func TableLock(db, table uint32) LockID {
	return LockID{Lvl: LevelTable, DB: db, Table: table}
}

// PageLock returns the LockID of a page of a table.
func PageLock(db, table uint32, page uint64) LockID {
	return LockID{Lvl: LevelPage, DB: db, Table: table, Page: page}
}

// RecordLock returns the LockID of a single record.
func RecordLock(db, table uint32, page uint64, slot uint32) LockID {
	return LockID{Lvl: LevelRecord, DB: db, Table: table, Page: page, Slot: slot}
}

// Parent returns the LockID of the object's parent in the hierarchy and
// true, or the zero LockID and false if the object is the hierarchy root.
func (id LockID) Parent() (LockID, bool) {
	switch id.Lvl {
	case LevelDatabase:
		return LockID{}, false
	case LevelTable:
		return DatabaseLock(id.DB), true
	case LevelPage:
		return TableLock(id.DB, id.Table), true
	case LevelRecord:
		return PageLock(id.DB, id.Table, id.Page), true
	default:
		return LockID{}, false
	}
}

// Level returns the object's level in the hierarchy.
func (id LockID) Level() Level { return id.Lvl }

// String renders the LockID in a compact debugging form.
func (id LockID) String() string {
	switch id.Lvl {
	case LevelDatabase:
		return fmt.Sprintf("db(%d)", id.DB)
	case LevelTable:
		return fmt.Sprintf("tbl(%d.%d)", id.DB, id.Table)
	case LevelPage:
		return fmt.Sprintf("pg(%d.%d.%d)", id.DB, id.Table, id.Page)
	case LevelRecord:
		return fmt.Sprintf("rec(%d.%d.%d.%d)", id.DB, id.Table, id.Page, id.Slot)
	default:
		return fmt.Sprintf("lock(%+v)", struct {
			L Level
			D uint32
			T uint32
			P uint64
			S uint32
		}{id.Lvl, id.DB, id.Table, id.Page, id.Slot})
	}
}

// hash returns a well-distributed hash of the LockID used to pick a lock
// table partition and bucket (FNV-1a over the components).
func (id LockID) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(id.Lvl))
	mix(uint64(id.DB))
	mix(uint64(id.Table))
	mix(id.Page)
	mix(uint64(id.Slot))
	return h
}
