package lockmgr

import (
	"testing"
	"testing/quick"
)

func allModes() []Mode { return []Mode{NL, IS, IX, S, SIX, U, X} }

func TestModeStringsAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range allModes() {
		s := m.String()
		if s == "" || s == "?" || seen[s] {
			t.Fatalf("mode %d has bad or duplicate name %q", m, s)
		}
		seen[s] = true
	}
	if Mode(42).String() != "?" {
		t.Fatal("invalid mode should render as ?")
	}
	if Mode(42).Valid() {
		t.Fatal("Mode(42) must not be valid")
	}
}

// TestCompatibilityTextbook spot-checks the compatibility matrix against the
// Gray & Reuter table cited in paper §3.1.
func TestCompatibilityTextbook(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, SIX, true}, {IS, X, false},
		{IX, IX, true}, {IX, S, false}, {IX, SIX, false}, {IX, X, false},
		{S, S, true}, {S, SIX, false}, {S, X, false},
		{SIX, SIX, false}, {SIX, X, false},
		{X, X, false}, {X, IS, false},
		{U, S, true}, {U, U, false}, {U, X, false}, {U, IX, false},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestCompatibilityProperties checks structural properties of the matrix:
// NL is compatible with everything, X is incompatible with everything except
// NL, and the matrix is symmetric.
func TestCompatibilityProperties(t *testing.T) {
	for _, a := range allModes() {
		if !Compatible(NL, a) || !Compatible(a, NL) {
			t.Errorf("NL must be compatible with %v", a)
		}
		if a != NL && (Compatible(X, a) || Compatible(a, X)) {
			t.Errorf("X must be incompatible with %v", a)
		}
		for _, b := range allModes() {
			if Compatible(a, b) != Compatible(b, a) {
				t.Errorf("matrix not symmetric at (%v,%v)", a, b)
			}
		}
	}
}

// TestSupremumProperties: Supremum is commutative, idempotent, has NL as the
// identity and X as the absorbing element, and its result is always at least
// as strong as both inputs (anything incompatible with an input is
// incompatible with the supremum).
func TestSupremumProperties(t *testing.T) {
	for _, a := range allModes() {
		if Supremum(a, a) != a {
			t.Errorf("Supremum(%v,%v) != %v", a, a, a)
		}
		if Supremum(a, NL) != a || Supremum(NL, a) != a {
			t.Errorf("NL must be identity for %v", a)
		}
		if Supremum(a, X) != X || Supremum(X, a) != X {
			t.Errorf("X must absorb %v", a)
		}
		for _, b := range allModes() {
			s := Supremum(a, b)
			if s != Supremum(b, a) {
				t.Errorf("Supremum not commutative at (%v,%v)", a, b)
			}
			if !Covers(s, a) || !Covers(s, b) {
				t.Errorf("Supremum(%v,%v)=%v does not cover both inputs", a, b, s)
			}
			// Strength: if some mode c conflicts with a, it must conflict
			// with sup(a,b) too (the supremum is at least as restrictive).
			for _, c := range allModes() {
				if !Compatible(c, a) && Compatible(c, s) {
					t.Errorf("sup(%v,%v)=%v weaker than %v w.r.t. %v", a, b, s, a, c)
				}
			}
		}
	}
}

func TestSupremumAssociativityQuick(t *testing.T) {
	f := func(ai, bi, ci uint8) bool {
		ms := allModes()
		a, b, c := ms[int(ai)%len(ms)], ms[int(bi)%len(ms)], ms[int(ci)%len(ms)]
		return Supremum(Supremum(a, b), c) == Supremum(a, Supremum(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoversReflexiveAndOrdered(t *testing.T) {
	for _, a := range allModes() {
		if !Covers(a, a) {
			t.Errorf("Covers(%v,%v) must be true", a, a)
		}
		if !Covers(X, a) {
			t.Errorf("X must cover %v", a)
		}
		if !Covers(a, NL) {
			t.Errorf("%v must cover NL", a)
		}
	}
	if Covers(IS, S) || Covers(S, X) || Covers(IX, SIX) {
		t.Fatal("Covers claims a weaker mode covers a stronger one")
	}
	if !Covers(SIX, S) || !Covers(SIX, IX) || !Covers(S, IS) || !Covers(SIX, IS) {
		t.Fatal("Covers misses textbook orderings")
	}
}

// TestParentModeConsistency: the parent intention mode of a shared child
// mode must itself be shared, and acquiring the parent mode must be enough
// to announce the child's access type (exclusive children need IX parents).
func TestParentModeConsistency(t *testing.T) {
	for _, m := range allModes() {
		p := ParentMode(m)
		if m == NL {
			if p != NL {
				t.Errorf("ParentMode(NL) = %v, want NL", p)
			}
			continue
		}
		if m.Shared() && !p.Shared() {
			t.Errorf("shared child %v requires non-shared parent %v", m, p)
		}
		if m.Exclusive() && p != IX {
			t.Errorf("exclusive child %v should require IX parent, got %v", m, p)
		}
	}
	if ParentMode(S) != IS || ParentMode(IS) != IS {
		t.Fatal("read-only child modes must need IS parents")
	}
	if ParentMode(X) != IX || ParentMode(IX) != IX || ParentMode(SIX) != IX {
		t.Fatal("writing child modes must need IX parents")
	}
}

func TestSharedExclusiveClassification(t *testing.T) {
	// Paper §4.2 criterion 3: shared modes are S, IS, IX.
	for _, m := range []Mode{S, IS, IX} {
		if !m.Shared() {
			t.Errorf("%v must be classified shared", m)
		}
		if m.Exclusive() {
			t.Errorf("%v must not be classified exclusive", m)
		}
	}
	for _, m := range []Mode{X, SIX, U} {
		if m.Shared() {
			t.Errorf("%v must not be classified shared (SLI may not pass it)", m)
		}
		if !m.Exclusive() {
			t.Errorf("%v must be classified exclusive", m)
		}
	}
	if NL.Shared() || NL.Exclusive() {
		t.Fatal("NL is neither shared nor exclusive")
	}
}

func TestLockIDParentChain(t *testing.T) {
	rec := RecordLock(1, 7, 42, 3)
	page, ok := rec.Parent()
	if !ok || page != PageLock(1, 7, 42) {
		t.Fatalf("record parent = %v, want page", page)
	}
	tbl, ok := page.Parent()
	if !ok || tbl != TableLock(1, 7) {
		t.Fatalf("page parent = %v, want table", tbl)
	}
	db, ok := tbl.Parent()
	if !ok || db != DatabaseLock(1) {
		t.Fatalf("table parent = %v, want database", db)
	}
	if _, ok := db.Parent(); ok {
		t.Fatal("database lock must have no parent")
	}
}

func TestLockIDLevelsAndStrings(t *testing.T) {
	ids := []LockID{DatabaseLock(1), TableLock(1, 2), PageLock(1, 2, 3), RecordLock(1, 2, 3, 4)}
	wantLvl := []Level{LevelDatabase, LevelTable, LevelPage, LevelRecord}
	seen := map[string]bool{}
	for i, id := range ids {
		if id.Level() != wantLvl[i] {
			t.Errorf("%v level = %v, want %v", id, id.Level(), wantLvl[i])
		}
		s := id.String()
		if s == "" || seen[s] {
			t.Errorf("LockID %v has empty or duplicate string %q", id, s)
		}
		seen[s] = true
		if wantLvl[i].String() == "" {
			t.Errorf("level %v has empty string", wantLvl[i])
		}
	}
	if !LevelTable.CoarserOrEqual(LevelPage) || !LevelPage.CoarserOrEqual(LevelPage) || LevelRecord.CoarserOrEqual(LevelPage) {
		t.Fatal("CoarserOrEqual ordering wrong")
	}
}

// TestLockIDHashSpreads checks the hash distributes distinct IDs over
// partitions reasonably (no catastrophic clustering).
func TestLockIDHashSpreads(t *testing.T) {
	const parts = 64
	counts := make([]int, parts)
	n := 0
	for table := uint32(0); table < 8; table++ {
		for page := uint64(0); page < 64; page++ {
			for slot := uint32(0); slot < 4; slot++ {
				id := RecordLock(1, table, page, slot)
				counts[id.hash()%parts]++
				n++
			}
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max > 4*n/parts {
		t.Fatalf("hash clustering: max bucket %d of %d total across %d partitions", max, n, parts)
	}
}

func TestLockIDMapKeyEquality(t *testing.T) {
	m := map[LockID]int{}
	m[RecordLock(1, 2, 3, 4)] = 1
	m[RecordLock(1, 2, 3, 4)] = 2
	if len(m) != 1 || m[RecordLock(1, 2, 3, 4)] != 2 {
		t.Fatal("identical LockIDs must collide as map keys")
	}
	if _, ok := m[RecordLock(1, 2, 3, 5)]; ok {
		t.Fatal("distinct LockIDs must not collide")
	}
}
