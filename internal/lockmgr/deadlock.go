package lockmgr

// Deadlock detection. Shore-MT uses the "dreadlocks" algorithm; this
// reproduction uses a straightforward wait-for-graph search triggered
// periodically while a transaction is blocked (plus a timeout fallback in
// waitFor). The search is conservative: it only follows lock heads whose
// latch it can acquire without blocking, so it never introduces latch
// deadlocks and may miss a cycle on one probe — the next probe (or the
// timeout) will catch it.

// maxDeadlockDepth bounds the wait-for-graph search.
const maxDeadlockDepth = 64

// detectDeadlock reports whether the blocked owner participates in a
// wait-for cycle. The caller (the detecting owner itself) is the victim.
func (m *Manager) detectDeadlock(self *Owner, req *Request) bool {
	visited := map[*Owner]bool{self: true}
	return m.findCycle(self, req, visited, 0)
}

// findCycle performs a depth-first search of the wait-for graph starting
// from the owners blocking req, looking for a path back to self.
func (m *Manager) findCycle(self *Owner, req *Request, visited map[*Owner]bool, depth int) bool {
	if depth > maxDeadlockDepth {
		return false
	}
	for _, blocker := range m.blockersOf(req) {
		if blocker == self {
			return true
		}
		if visited[blocker] {
			continue
		}
		visited[blocker] = true
		next := blocker.waiting.Load()
		if next == nil {
			continue
		}
		if m.findCycle(self, next, visited, depth+1) {
			return true
		}
	}
	return false
}

// blockersOf returns the owners that the given waiting (or converting)
// request is waiting for: holders of incompatible granted/converting
// requests, plus earlier waiters that FIFO granting will serve first. It
// uses TryLock on the lock-head latch and returns nil if the latch is busy.
func (m *Manager) blockersOf(req *Request) []*Owner {
	h := req.head
	if !h.latch.TryLock() {
		return nil
	}
	defer h.latch.Unlock()

	st := req.status.Load()
	if st != statusWaiting && st != statusConverting {
		return nil // already granted or cancelled
	}
	want := req.mode
	if st == statusConverting {
		want = req.convMode
	}

	var out []*Owner
	seenSelf := false
	h.queue.forEach(func(r *Request) {
		if r == req {
			seenSelf = true
			return
		}
		switch rst := r.status.Load(); rst {
		case statusGranted, statusConverting:
			// The holder blocks us if its held mode conflicts, or — for a
			// pending conversion — if its target mode does. A converting
			// request whose held AND target modes both conflict is still one
			// blocker: appending its owner twice would make every deadlock
			// probe re-walk that owner's whole wait-for subtree.
			blocked := !Compatible(want, r.mode) ||
				(rst == statusConverting && !Compatible(want, r.convMode))
			if blocked {
				if owner := r.owner.Load(); owner != nil {
					out = append(out, owner)
				}
			}
		case statusWaiting:
			// FIFO: a waiting request queued before ours is served first, so
			// we transitively wait for whatever it waits for.
			if !seenSelf && st == statusWaiting {
				if owner := r.owner.Load(); owner != nil {
					out = append(out, owner)
				}
			}
		}
	})
	return out
}
