package lockmgr

// Deadlock detection. Shore-MT uses the "dreadlocks" algorithm; this
// reproduction uses a wait-for-graph search triggered periodically while a
// transaction is blocked (plus a timeout fallback in waitFor). The search is
// conservative: it only follows lock heads whose latch it can acquire
// without blocking, so it never introduces latch deadlocks and may miss a
// cycle on one probe — the next probe (or the timeout) will catch it.
//
// The search is partition-sharded to match the lock table: most deadlocks in
// a partitioned workload are short cycles between rows that hash to the same
// lock-table partition, so every probe first walks only same-partition
// wait-for edges — a search whose frontier (and latch footprint) stays inside
// one shard of the table. Edges that leave the partition are not followed;
// they set an "escaped" flag instead, and only when a local probe escaped
// does every deadlockEscalateEvery-th probe escalate to the full
// cross-partition search.

// maxDeadlockDepth bounds the wait-for-graph search.
const maxDeadlockDepth = 64

// deadlockEscalateEvery is how many probe ticks pass between full
// cross-partition searches while local probes keep escaping. Local probes
// still run every tick, so same-partition cycles are caught at the base
// cadence and only the (rarer) cross-partition cycles wait up to
// deadlockEscalateEvery ticks.
const deadlockEscalateEvery = 4

// allPartitions disables the partition filter in findCycle.
const allPartitions = ^uint32(0)

// detectDeadlock reports whether the blocked owner participates in a
// wait-for cycle. The caller (the detecting owner itself) is the victim.
// tick counts the caller's probe attempts for this wait; it paces escalation.
func (m *Manager) detectDeadlock(self *Owner, req *Request, tick uint64) bool {
	m.stats.DeadlockLocalProbes.Add(1)
	visited := map[*Owner]bool{self: true}
	escaped := false
	if m.findCycle(self, req, visited, 0, req.head.part, &escaped) {
		return true
	}
	if !escaped || tick%deadlockEscalateEvery != 0 {
		return false
	}
	// A wait-for edge left req's partition: the cycle (if any) spans
	// partitions and only a global search can close it.
	m.stats.DeadlockEscalations.Add(1)
	visited = map[*Owner]bool{self: true}
	return m.findCycle(self, req, visited, 0, allPartitions, &escaped)
}

// findCycle performs a depth-first search of the wait-for graph starting
// from the owners blocking req, looking for a path back to self. When part
// is not allPartitions the search stays inside that lock-table partition:
// an edge whose next lock head lives elsewhere is skipped and *escaped is
// set so the caller knows the local result is not conclusive.
func (m *Manager) findCycle(self *Owner, req *Request, visited map[*Owner]bool, depth int, part uint32, escaped *bool) bool {
	if depth > maxDeadlockDepth {
		return false
	}
	for _, blocker := range m.blockersOf(req) {
		if blocker == self {
			return true
		}
		if visited[blocker] {
			continue
		}
		visited[blocker] = true
		next := blocker.waiting.Load()
		if next == nil {
			continue
		}
		if part != allPartitions && next.head.part != part {
			*escaped = true
			continue
		}
		if m.findCycle(self, next, visited, depth+1, part, escaped) {
			return true
		}
	}
	return false
}

// blockersOf returns the owners that the given waiting (or converting)
// request is waiting for: holders of incompatible granted/converting
// requests, plus earlier waiters that FIFO granting will serve first. It
// uses TryLock on the lock-head latch and returns nil if the latch is busy.
func (m *Manager) blockersOf(req *Request) []*Owner {
	h := req.head
	if !h.latch.TryLock() {
		return nil
	}
	defer h.latch.Unlock()

	st := req.status.Load()
	if st != statusWaiting && st != statusConverting {
		return nil // already granted or cancelled
	}
	want := req.mode
	if st == statusConverting {
		want = req.convMode
	}

	var out []*Owner
	seenSelf := false
	h.queue.forEach(func(r *Request) {
		if r == req {
			seenSelf = true
			return
		}
		switch rst := r.status.Load(); rst {
		case statusGranted, statusConverting:
			// The holder blocks us if its held mode conflicts, or — for a
			// pending conversion — if its target mode does. A converting
			// request whose held AND target modes both conflict is still one
			// blocker: appending its owner twice would make every deadlock
			// probe re-walk that owner's whole wait-for subtree.
			blocked := !Compatible(want, r.mode) ||
				(rst == statusConverting && !Compatible(want, r.convMode))
			if blocked {
				if owner := r.owner.Load(); owner != nil {
					out = append(out, owner)
				}
			}
		case statusWaiting:
			// FIFO: a waiting request queued before ours is served first, so
			// we transitively wait for whatever it waits for.
			if !seenSelf && st == statusWaiting {
				if owner := r.owner.Load(); owner != nil {
					out = append(out, owner)
				}
			}
		}
	})
	return out
}
