package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"slidb/internal/record"
)

func key(i int) string { return record.EncodeKey(record.Int(int64(i))) }

func TestInsertGetBasic(t *testing.T) {
	tr := New[int]()
	if _, ok := tr.Get(key(1)); ok {
		t.Fatal("empty tree claims to contain a key")
	}
	if !tr.Insert(key(1), 100) {
		t.Fatal("first insert should report new key")
	}
	if tr.Insert(key(1), 200) {
		t.Fatal("second insert of same key should report replacement")
	}
	v, ok := tr.Get(key(1))
	if !ok || v != 200 {
		t.Fatalf("Get = %d,%v want 200,true", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestInsertIfAbsent(t *testing.T) {
	tr := New[string]()
	if !tr.InsertIfAbsent("a", "first") {
		t.Fatal("InsertIfAbsent on missing key failed")
	}
	if tr.InsertIfAbsent("a", "second") {
		t.Fatal("InsertIfAbsent overwrote an existing key")
	}
	v, _ := tr.Get("a")
	if v != "first" {
		t.Fatalf("value = %q, want first", v)
	}
}

func TestManyInsertsAndSplits(t *testing.T) {
	tr := New[int]()
	const n = 10000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		tr.Insert(key(i), i*10)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(key(i))
		if !ok || v != i*10 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	// Full ascending scan must return keys in order.
	prev := ""
	count := 0
	tr.Ascend(func(k string, v int) bool {
		if k <= prev && prev != "" {
			t.Fatalf("scan out of order at %q", k)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("Ascend visited %d keys, want %d", count, n)
	}
}

func TestDelete(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 1000; i++ {
		tr.Insert(key(i), i)
	}
	for i := 0; i < 1000; i += 2 {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) reported missing", i)
		}
	}
	if tr.Delete(key(0)) {
		t.Fatal("double delete reported success")
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		_, ok := tr.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
	// Deleted keys can be reinserted.
	if !tr.Insert(key(0), 42) {
		t.Fatal("reinsert after delete failed")
	}
}

func TestAscendRange(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Insert(key(i), i)
	}
	var got []int
	tr.AscendRange(key(10), key(20), func(k string, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 11 || got[0] != 10 || got[10] != 20 {
		t.Fatalf("range [10,20] = %v", got)
	}
	// Empty hi scans to the end.
	got = got[:0]
	tr.AscendRange(key(95), "", func(k string, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 5 {
		t.Fatalf("open-ended range returned %v", got)
	}
	// Early termination.
	count := 0
	tr.AscendRange(key(0), "", func(string, int) bool { count++; return count < 7 })
	if count != 7 {
		t.Fatalf("early termination visited %d", count)
	}
	// Empty range.
	count = 0
	tr.AscendRange(key(200), key(300), func(string, int) bool { count++; return true })
	if count != 0 {
		t.Fatal("out-of-bounds range returned keys")
	}
}

// TestAgainstReferenceMap drives the tree with random operations and checks
// it against a plain map + sorted-slice reference.
func TestAgainstReferenceMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New[int]()
		ref := map[string]int{}
		for op := 0; op < 2000; op++ {
			k := key(rng.Intn(500))
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Int()
				tr.Insert(k, v)
				ref[k] = v
			case 2:
				got := tr.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			got, ok := tr.Get(k)
			if !ok || got != want {
				return false
			}
		}
		// Scan order must match sorted reference keys.
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		okOrder := true
		tr.Ascend(func(k string, v int) bool {
			if i >= len(keys) || keys[i] != k {
				okOrder = false
				return false
			}
			i++
			return true
		})
		return okOrder && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 1000; i++ {
		tr.Insert(key(i), i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tr.Insert(key(1000+w*2000+i), i)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if v, ok := tr.Get(key(i % 1000)); !ok || v != i%1000 {
					t.Errorf("lost key %d", i%1000)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 1000+4*2000 {
		t.Fatalf("Len = %d, want %d", tr.Len(), 1000+4*2000)
	}
	if tr.LatchStats().Acquires == 0 {
		t.Fatal("latch statistics not collected")
	}
}

func TestStringKeysWork(t *testing.T) {
	tr := New[int]()
	names := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for i, n := range names {
		tr.Insert(record.EncodeKey(record.String(n)), i)
	}
	var got []string
	tr.Ascend(func(k string, v int) bool {
		got = append(got, names[v])
		return true
	})
	want := fmt.Sprint([]string{"alpha", "bravo", "charlie", "delta", "echo"})
	if fmt.Sprint(got) != want {
		t.Fatalf("scan order %v, want %v", got, want)
	}
}
