// Package btree implements an in-memory B+tree keyed by memcomparable
// strings (see record.EncodeKey). It backs the engine's primary and
// secondary indexes, mapping keys to record identifiers.
//
// Concurrency: the tree is protected by a single instrumented reader-writer
// latch. Lookups and range scans share the latch; inserts and deletes take
// it exclusively. This is deliberately coarser than a latch-coupled B+tree —
// the paper's contention story is about the lock manager, and index latch
// hold times here are sub-microsecond — but the latch statistics are still
// reported so index contention would be visible in the "other contention"
// component of the breakdown figures.
package btree

import (
	"slidb/internal/latch"
)

// degree is the maximum number of children of an internal node (and the
// maximum number of keys in a leaf is degree-1 before it splits).
const degree = 64

// Tree is a B+tree from string keys to values of type V.
type Tree[V any] struct {
	latch latch.RWLatch
	root  node[V]
	size  int
}

type node[V any] interface {
	// insert returns (newRight, splitKey, grew) when the node split.
	insert(key string, val V, replace bool) (node[V], string, bool, bool)
	// get returns the value for key.
	get(key string) (V, bool)
	// del removes key, returning whether it was present.
	del(key string) bool
	// firstLeaf returns the leftmost leaf under the node.
	firstLeaf() *leaf[V]
	// findLeaf returns the leaf that would contain key.
	findLeaf(key string) *leaf[V]
}

type leaf[V any] struct {
	keys []string
	vals []V
	next *leaf[V]
}

type internal[V any] struct {
	keys     []string // len(children) - 1 separators
	children []node[V]
}

// New creates an empty tree.
func New[V any]() *Tree[V] {
	return &Tree[V]{root: &leaf[V]{}}
}

// Len returns the number of keys in the tree.
func (t *Tree[V]) Len() int {
	t.latch.RLock()
	defer t.latch.RUnlock()
	return t.size
}

// LatchStats exposes the tree latch counters for contention reporting.
func (t *Tree[V]) LatchStats() latch.StatsSnapshot { return t.latch.Stats().Snapshot() }

// Get returns the value stored under key.
func (t *Tree[V]) Get(key string) (V, bool) {
	t.latch.RLock()
	defer t.latch.RUnlock()
	return t.root.get(key)
}

// Insert stores val under key, replacing any existing value. It reports
// whether the key was newly inserted (false means replaced).
func (t *Tree[V]) Insert(key string, val V) bool {
	t.latch.Lock()
	defer t.latch.Unlock()
	right, splitKey, grew, inserted := t.root.insert(key, val, true)
	if grew {
		t.root = &internal[V]{keys: []string{splitKey}, children: []node[V]{t.root, right}}
	}
	if inserted {
		t.size++
	}
	return inserted
}

// InsertIfAbsent stores val under key only if the key is not present. It
// reports whether the value was stored.
func (t *Tree[V]) InsertIfAbsent(key string, val V) bool {
	t.latch.Lock()
	defer t.latch.Unlock()
	if _, exists := t.root.get(key); exists {
		return false
	}
	right, splitKey, grew, inserted := t.root.insert(key, val, false)
	if grew {
		t.root = &internal[V]{keys: []string{splitKey}, children: []node[V]{t.root, right}}
	}
	if inserted {
		t.size++
	}
	return inserted
}

// Delete removes key and reports whether it was present. Leaves are not
// rebalanced (deleted space is reclaimed when keys are reinserted), which is
// adequate for the workloads in this repository where deletes are rare.
func (t *Tree[V]) Delete(key string) bool {
	t.latch.Lock()
	defer t.latch.Unlock()
	if t.root.del(key) {
		t.size--
		return true
	}
	return false
}

// AscendRange calls fn for every key in [lo, hi] in ascending order. An
// empty hi means "to the end". Iteration stops early if fn returns false.
func (t *Tree[V]) AscendRange(lo, hi string, fn func(key string, val V) bool) {
	t.latch.RLock()
	defer t.latch.RUnlock()
	l := t.root.findLeaf(lo)
	for l != nil {
		for i, k := range l.keys {
			if k < lo {
				continue
			}
			if hi != "" && k > hi {
				return
			}
			if !fn(k, l.vals[i]) {
				return
			}
		}
		l = l.next
	}
}

// Ascend calls fn for every key in ascending order.
func (t *Tree[V]) Ascend(fn func(key string, val V) bool) {
	t.latch.RLock()
	defer t.latch.RUnlock()
	l := t.root.firstLeaf()
	for l != nil {
		for i, k := range l.keys {
			if !fn(k, l.vals[i]) {
				return
			}
		}
		l = l.next
	}
}

// --- leaf ---

func (l *leaf[V]) search(key string) (int, bool) {
	lo, hi := 0, len(l.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(l.keys) && l.keys[lo] == key
}

func (l *leaf[V]) insert(key string, val V, replace bool) (node[V], string, bool, bool) {
	i, found := l.search(key)
	if found {
		if replace {
			l.vals[i] = val
		}
		return nil, "", false, false
	}
	l.keys = append(l.keys, "")
	l.vals = append(l.vals, val)
	copy(l.keys[i+1:], l.keys[i:])
	copy(l.vals[i+1:], l.vals[i:])
	l.keys[i] = key
	l.vals[i] = val
	if len(l.keys) < degree {
		return nil, "", false, true
	}
	// Split.
	mid := len(l.keys) / 2
	right := &leaf[V]{
		keys: append([]string(nil), l.keys[mid:]...),
		vals: append([]V(nil), l.vals[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid]
	l.vals = l.vals[:mid]
	l.next = right
	return right, right.keys[0], true, true
}

func (l *leaf[V]) get(key string) (V, bool) {
	var zero V
	i, found := l.search(key)
	if !found {
		return zero, false
	}
	return l.vals[i], true
}

func (l *leaf[V]) del(key string) bool {
	i, found := l.search(key)
	if !found {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	return true
}

func (l *leaf[V]) firstLeaf() *leaf[V]      { return l }
func (l *leaf[V]) findLeaf(string) *leaf[V] { return l }

// --- internal ---

func (n *internal[V]) childFor(key string) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (n *internal[V]) insert(key string, val V, replace bool) (node[V], string, bool, bool) {
	idx := n.childFor(key)
	right, splitKey, grew, inserted := n.children[idx].insert(key, val, replace)
	if !grew {
		return nil, "", false, inserted
	}
	// Insert splitKey/right after child idx.
	n.keys = append(n.keys, "")
	copy(n.keys[idx+1:], n.keys[idx:])
	n.keys[idx] = splitKey
	n.children = append(n.children, nil)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = right
	if len(n.children) <= degree {
		return nil, "", false, inserted
	}
	// Split this internal node.
	midKey := len(n.keys) / 2
	promote := n.keys[midKey]
	rightNode := &internal[V]{
		keys:     append([]string(nil), n.keys[midKey+1:]...),
		children: append([]node[V](nil), n.children[midKey+1:]...),
	}
	n.keys = n.keys[:midKey]
	n.children = n.children[:midKey+1]
	return rightNode, promote, true, inserted
}

func (n *internal[V]) get(key string) (V, bool) { return n.children[n.childFor(key)].get(key) }
func (n *internal[V]) del(key string) bool      { return n.children[n.childFor(key)].del(key) }
func (n *internal[V]) firstLeaf() *leaf[V]      { return n.children[0].firstLeaf() }
func (n *internal[V]) findLeaf(key string) *leaf[V] {
	return n.children[n.childFor(key)].findLeaf(key)
}
