// Package slidb_test contains the repository-level benchmark harness: one
// testing.B target per figure of the paper's evaluation section, plus
// ablation benchmarks for the SLI design choices discussed in §4.2/§4.4.
//
// Each benchmark regenerates its figure at a reduced ("quick") scale and
// reports the figure's headline numbers as benchmark metrics, so
//
//	go test -bench=Fig -benchtime=1x
//
// prints a compact reproduction of the whole evaluation. cmd/slibench runs
// the same code at configurable scale and prints the full tables.
package slidb_test

import (
	"strings"
	"testing"

	"slidb/internal/figures"
)

// benchWorkloads is the subset of workloads used by the per-workload figure
// benchmarks: the short transactions the paper focuses on plus the two large
// TPC-C transactions that act as negative controls.
var benchWorkloads = []string{
	figures.WLGetSub, figures.WLGetAccess, figures.WLNDBBMix,
	figures.WLTPCB, figures.WLPayment, figures.WLNewOrder,
	figures.WLStockLevel,
}

func quickOptions() figures.Options {
	o := figures.DefaultOptions().Quick()
	o.Workloads = benchWorkloads
	return o
}

func reportTable(b *testing.B, tbl figures.Table, metricCols map[string]string) {
	b.Helper()
	sanitize := func(s string) string {
		s = strings.Map(func(r rune) rune {
			switch r {
			case ' ', '(', ')':
				return '_'
			default:
				return r
			}
		}, s)
		return s
	}
	for _, row := range tbl.Rows {
		for col, unit := range metricCols {
			v := tbl.Value(row.Label, col)
			b.ReportMetric(v, sanitize(row.Label)+"/"+unit)
		}
	}
}

// BenchmarkFig01LockMgrOverheadVsLoad regenerates Figure 1: the lock
// manager's share of execution time as offered load grows (NDBB mix,
// baseline). The contention share should grow with the agent count.
func BenchmarkFig01LockMgrOverheadVsLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := figures.Figure1(quickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tbl, map[string]string{"lockmgr-contention-%": "lm-cont-pct", "tps": "tps"})
	}
}

// BenchmarkFig06BaselineBreakdown regenerates Figure 6: per-workload
// execution time breakdowns at peak load with SLI off.
func BenchmarkFig06BaselineBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := figures.Figure6(quickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tbl, map[string]string{"lockmgr-cont-%": "lm-cont-pct"})
	}
}

// BenchmarkFig07ThroughputVsLoad regenerates Figure 7: throughput of the
// NDBB mix, TPC-B and TPC-C Payment as the number of agents grows.
func BenchmarkFig07ThroughputVsLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := figures.Figure7(quickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tbl, map[string]string{figures.WLNDBBMix: "ndbb-tps", figures.WLTPCB: "tpcb-tps"})
	}
}

// BenchmarkFig08LockBreakdown regenerates Figure 8: classification of lock
// acquisitions (hot/heritable/row) and average locks per transaction.
func BenchmarkFig08LockBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := figures.Figure8(quickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tbl, map[string]string{"locks-per-xct": "locks-per-xct", "hot-heritable-%": "hot-heritable-pct"})
	}
}

// BenchmarkFig09SLIOutcomes regenerates Figure 9: what happened to the locks
// SLI passed between transactions (reclaimed, invalidated, discarded).
func BenchmarkFig09SLIOutcomes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := figures.Figure9(quickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tbl, map[string]string{"reclaimed-%": "reclaimed-pct", "discarded-%": "discarded-pct"})
	}
}

// BenchmarkFig10SLIBreakdown regenerates Figure 10: execution time breakdowns
// on a fully loaded system with SLI enabled; lock-manager contention should
// be near zero for every workload.
func BenchmarkFig10SLIBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := figures.Figure10(quickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tbl, map[string]string{"lockmgr-cont-%": "lm-cont-pct", "sli-%": "sli-pct"})
	}
}

// BenchmarkFig11Speedup regenerates Figure 11: SLI vs baseline throughput per
// workload (the paper's 10-40% headline result for short transactions).
func BenchmarkFig11Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := figures.Figure11(quickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tbl, map[string]string{"speedup-%": "speedup-pct"})
	}
}

// BenchmarkAblationHotThreshold varies SLI's hot-lock threshold (criterion 2).
func BenchmarkAblationHotThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := figures.AblationHotThreshold(quickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tbl, map[string]string{"tps": "tps"})
	}
}

// BenchmarkAblationLevels compares table-only inheritance with the paper's
// page-and-above rule (criterion 1).
func BenchmarkAblationLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := figures.AblationEligibleLevels(quickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tbl, map[string]string{"tps": "tps", "passed-per-1k-xct": "passed-per-1k-xct"})
	}
}

// BenchmarkAblationBimodal reproduces the §4.4 bimodal-workload discussion.
func BenchmarkAblationBimodal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := figures.AblationBimodal(quickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tbl, map[string]string{"tps": "tps", "reclaimed-%": "reclaimed-pct"})
	}
}

// BenchmarkAblationRovingHotspot reproduces the §4.4 roving-hotspot
// discussion with an append-only history table.
func BenchmarkAblationRovingHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := figures.AblationRovingHotspot(quickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, tbl, map[string]string{"tps": "tps"})
	}
}
