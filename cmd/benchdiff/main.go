// Command benchdiff compares two BENCH_*.json artifacts produced by
// slibench -benchout and reports per-configuration throughput deltas, so CI
// can annotate each run with its drift against the previous run's artifact.
//
// Usage:
//
//	benchdiff [-threshold 10] OLD.json NEW.json
//	benchdiff OLD.json NEW.json -threshold 10   // flags after paths also work
//
// Rows are matched by (workload, config, agents). A throughput drop larger
// than the threshold (percent) is flagged as a regression with a GitHub
// Actions ::warning:: annotation; everything else is informational. A
// missing or unreadable OLD file is not an error — the first run of a
// repository has no previous artifact — benchdiff just says so and exits 0.
// The exit status is always 0: benchmark noise on shared CI runners must not
// fail the build, only annotate it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// entry mirrors the fields of slibench's benchEntry that benchdiff compares.
// Decoding ignores any extra fields, so the two tools can evolve their
// schemas independently.
type entry struct {
	Workload      string  `json:"workload"`
	Config        string  `json:"config"`
	Agents        int     `json:"agents"`
	TPS           float64 `json:"tps"`
	AvgLatencyUs  float64 `json:"avg_latency_us"`
	ReserveWaitMs float64 `json:"log_reserve_wait_ms_total"`
	ELRAborts     uint64  `json:"elr_aborts"`
	UndoFailures  uint64  `json:"undo_failures"`
	// Log-tail efficiency (PR 7): physical sink writes per flusher cycle
	// (~1 on the vectored durable path, 0 for in-memory runs), the mean
	// group-commit window, and cumulative publish-fence wait.
	FlushCycles    uint64  `json:"flush_cycles"`
	WritesPerCycle float64 `json:"writes_per_cycle"`
	AvgWindowUs    float64 `json:"avg_window_us"`
	FenceWaitUs    float64 `json:"fence_wait_us"`
	// Sharded-log shape (PR 10): virtual-log count and the commits that paid
	// the cross-shard flush rendezvous. Pre-shard artifacts decode both as
	// zero — "not measured", rendered n/a, never compared.
	LogShards         int    `json:"log_shards"`
	CrossShardCommits uint64 `json:"cross_shard_commits"`
}

type key struct {
	workload, config string
	agents           int
}

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent of tps")
	// The flag package stops at the first positional argument; accept flags
	// anywhere (before, between, after the two paths) by re-parsing after
	// each positional. A malformed flag still exits 2 via ExitOnError.
	var paths []string
	rest := os.Args[1:]
	for {
		if err := flag.CommandLine.Parse(rest); err != nil {
			os.Exit(2)
		}
		remaining := flag.CommandLine.Args()
		if len(remaining) == 0 {
			break
		}
		paths = append(paths, remaining[0])
		rest = remaining[1:]
	}
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] OLD.json NEW.json")
		os.Exit(2)
	}
	oldPath, newPath := paths[0], paths[1]

	oldEntries, err := load(oldPath)
	if err != nil {
		fmt.Printf("::notice::benchdiff: no previous benchmark artifact (%v); nothing to compare\n", err)
		return
	}
	newEntries, err := load(newPath)
	if err != nil {
		fmt.Printf("::warning::benchdiff: cannot read current benchmark artifact: %v\n", err)
		return
	}

	prev := make(map[key]entry, len(oldEntries))
	for _, e := range oldEntries {
		prev[key{e.Workload, e.Config, e.Agents}] = e
	}

	regressions := 0
	// The reserve-wait columns track the fetch-and-add reservation win (the
	// log-lsn refactor) across runs, the abort-path columns track ELR-for-
	// aborts coverage, and the writes-per-cycle / window columns track the
	// log tail's flush efficiency (the vectored-write and adaptive group-
	// commit work); all are informational, never a gate — except that a
	// non-zero undo-failure count is a correctness alarm, and a substantial
	// writes-per-cycle increase means the vectored flush path stopped
	// batching; both get warning annotations of their own.
	fmt.Printf("%-12s %-10s %7s %12s %12s %9s %12s %12s %9s %9s %10s %7s %8s %8s %10s\n",
		"workload", "config", "agents", "tps-prev", "tps-now", "delta-%", "rsv-ms-prev", "rsv-ms-now",
		"w/c-prev", "w/c-now", "window-us", "shards", "xs-prev", "xs-now", "undo-fail")
	for _, e := range newEntries {
		old, ok := prev[key{e.Workload, e.Config, e.Agents}]
		if !ok || old.TPS <= 0 {
			fmt.Printf("%-12s %-10s %7d %12s %12.1f %9s %12s %12.2f %9s %9.2f %10.1f %7s %8s %8s %10d\n",
				e.Workload, e.Config, e.Agents, "-", e.TPS, "new", "-", e.ReserveWaitMs,
				"-", e.WritesPerCycle, e.AvgWindowUs,
				shardsCol(e), "-", xshardCol(e), e.UndoFailures)
		} else {
			delta := 100 * (e.TPS - old.TPS) / old.TPS
			// A pre-PR-7 baseline artifact has no log-tail fields at all:
			// flush_cycles/writes_per_cycle decode as zero. Zero cycles means
			// "not measured", not "measured zero" — print n/a and skip the
			// fragmentation comparison rather than reporting 0.00 or a
			// division blowing up to +Inf%. The same rule covers the PR-10
			// sharding fields: a pre-shard artifact decodes log_shards as
			// zero, so its shard and cross-shard columns print n/a.
			wcPrev := "n/a"
			if old.FlushCycles > 0 {
				wcPrev = fmt.Sprintf("%.2f", old.WritesPerCycle)
			}
			fmt.Printf("%-12s %-10s %7d %12.1f %12.1f %+8.1f%% %12.2f %12.2f %9s %9.2f %10.1f %7s %8s %8s %10d\n",
				e.Workload, e.Config, e.Agents, old.TPS, e.TPS, delta, old.ReserveWaitMs, e.ReserveWaitMs,
				wcPrev, e.WritesPerCycle, e.AvgWindowUs,
				shardsCol(e), xshardCol(old), xshardCol(e), e.UndoFailures)
			if delta < -*threshold {
				regressions++
				fmt.Printf("::warning::benchdiff: %s/%s (agents=%d) tps regressed %.1f%% (%.1f -> %.1f)\n",
					e.Workload, e.Config, e.Agents, -delta, old.TPS, e.TPS)
			}
			// Writes per flush cycle is an efficiency invariant, not noise:
			// the vectored path lands a whole cycle in one submission, so a
			// >10% climb means flushes fragmented into extra syscalls.
			if old.FlushCycles > 0 && old.WritesPerCycle > 0 && e.WritesPerCycle > 1.1*old.WritesPerCycle {
				fmt.Printf("::warning::benchdiff: %s/%s (agents=%d) writes/cycle regressed %.2f -> %.2f — vectored flush path is fragmenting\n",
					e.Workload, e.Config, e.Agents, old.WritesPerCycle, e.WritesPerCycle)
			}
		}
		if e.UndoFailures > 0 {
			fmt.Printf("::warning::benchdiff: %s/%s (agents=%d) reported %d undo failures — rollback bug, investigate\n",
				e.Workload, e.Config, e.Agents, e.UndoFailures)
		}
	}
	if regressions == 0 {
		fmt.Printf("::notice::benchdiff: no tps regression beyond %.0f%% against the previous run\n", *threshold)
	}
}

// shardsCol renders an entry's virtual-log count, n/a for pre-shard
// artifacts (log_shards decodes as zero when the field is absent).
func shardsCol(e entry) string {
	if e.LogShards == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%d", e.LogShards)
}

// xshardCol renders an entry's cross-shard commit count, n/a for pre-shard
// artifacts where the counter was never measured.
func xshardCol(e entry) string {
	if e.LogShards == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%d", e.CrossShardCommits)
}

func load(path string) ([]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return entries, nil
}
