// Command slidbd runs a durable slidb engine as a daemon with an admin
// plane: Prometheus metrics (/metrics), liveness and readiness probes
// (/healthz, /readyz), a slow-transaction trace (/debug/slowtx) and pprof
// (/debug/pprof/). It opens the data directory, recovers, serves until
// SIGTERM/SIGINT, then drains gracefully: new transactions are rejected,
// in-flight ones finish, the log is allowed to reach durability, a
// checkpoint bounds the next restart, and the engine closes cleanly.
//
// slidb is an embedded engine, so slidbd has no client data plane of its
// own; it is the operational harness — an example of running the engine
// under real monitoring, and the process the CI smoke test drives.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"slidb"
	"slidb/internal/obs"
)

func main() {
	var (
		dataDir      = flag.String("datadir", "", "data directory for the durable engine (required)")
		addr         = flag.String("addr", ":8080", "admin-plane listen address")
		agents       = flag.Int("agents", 8, "agent worker goroutines")
		sli          = flag.Bool("sli", true, "enable speculative lock inheritance")
		elr          = flag.Bool("elr", true, "enable early lock release for commits")
		elrAborts    = flag.Bool("elraborts", true, "enable early lock release for aborts")
		async        = flag.Bool("async", true, "enable the asynchronous commit pipeline")
		gcWindow     = flag.Duration("gcwindow", 0, "group-commit batching window (0 = engine default)")
		profile      = flag.Bool("profile", true, "enable the per-component time profiler (feeds slidb_profile_seconds_total and slow-tx breakdowns)")
		slowtxCap    = flag.Int("slowtx", 0, "slow-transaction trace capacity (0 = default)")
		slowtxWindow = flag.Duration("slowtx-window", 0, "slow-transaction trace retention window (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight transactions and log durability")
	)
	flag.Parse()
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "slidbd: -datadir is required")
		flag.Usage()
		os.Exit(2)
	}

	eng, err := slidb.OpenAt(*dataDir, slidb.Config{
		Agents:                 *agents,
		SLI:                    *sli,
		EarlyLockRelease:       *elr,
		EarlyLockReleaseAborts: *elrAborts,
		AsyncCommit:            *async,
		GroupCommitWindow:      *gcWindow,
		Profile:                *profile,
	})
	if err != nil {
		log.Fatalf("slidbd: open %s: %v", *dataDir, err)
	}
	// First Observe call fixes the options, so set the tracer shape before
	// newServer (whose gauge registration calls Observe too).
	eng.ObserveWith(obs.ObserverOptions{
		SlowTxCapacity: *slowtxCap,
		SlowTxWindow:   *slowtxWindow,
	})
	rs := eng.RecoveryStats()
	log.Printf("slidbd: recovered %s: checkpoint lsn=%d winners=%d losers=%d records=%d",
		*dataDir, rs.CheckpointLSN, rs.Winners, rs.Losers, rs.LogRecordsScanned)

	srv := newServer(eng)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.ListenAndServe() }()
	log.Printf("slidbd: admin plane on %s (/metrics /healthz /readyz /debug/slowtx /debug/pprof/)", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigCh:
		log.Printf("slidbd: %v, draining (timeout %s)", sig, *drainTimeout)
	case err := <-httpErr:
		log.Printf("slidbd: admin listener failed: %v, shutting down", err)
	}

	exitCode := 0
	if err := srv.Shutdown(*drainTimeout); err != nil {
		log.Printf("slidbd: shutdown: %v", err)
		exitCode = 1
	}
	// The admin plane stays up through the drain so probes and final scrapes
	// see the terminal state; it goes down last.
	httpSrv.Close()
	log.Printf("slidbd: stopped")
	os.Exit(exitCode)
}
