package main

import (
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"slidb"
)

func openTestEngine(t *testing.T, dir string) *slidb.Engine {
	t.Helper()
	eng, err := slidb.OpenAt(dir, slidb.Config{
		Agents:                 4,
		SLI:                    true,
		EarlyLockRelease:       true,
		EarlyLockReleaseAborts: true,
		AsyncCommit:            true,
		Profile:                true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestGracefulDrainUnderLoad shuts the server down while clients are writing
// and asserts the drain contract: every in-flight transaction either commits
// durably or is rejected cleanly with errDraining, the shutdown checkpoints,
// and reopening the directory recovers zero losers with every acknowledged
// write present.
func TestGracefulDrainUnderLoad(t *testing.T) {
	dir := t.TempDir()
	eng := openTestEngine(t, dir)
	schema := slidb.MustSchema(
		slidb.Column{Name: "id", Type: slidb.TypeInt},
		slidb.Column{Name: "v", Type: slidb.TypeInt},
	)
	if err := eng.CreateTable("drain", schema, []string{"id"}); err != nil {
		t.Fatal(err)
	}
	srv := newServer(eng)

	const clients = 8
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		committed []int64
	)
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := int64(c*1_000_000 + i)
				err := srv.Exec(func(tx *slidb.Tx) error {
					return tx.Insert("drain", slidb.Row{slidb.Int(id), slidb.Int(int64(i))})
				})
				switch {
				case err == nil:
					mu.Lock()
					committed = append(committed, id)
					mu.Unlock()
				case errors.Is(err, errDraining):
					// Clean rejection; the client would retry elsewhere.
				default:
					t.Errorf("client %d: unexpected error during drain: %v", c, err)
					return
				}
			}
		}(c)
	}

	time.Sleep(100 * time.Millisecond)
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := srv.Shutdown(time.Second); err != nil {
		t.Errorf("second shutdown not a no-op: %v", err)
	}

	reopened, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer reopened.Close()
	rs := reopened.RecoveryStats()
	if rs.Losers != 0 {
		t.Errorf("graceful drain left %d loser transactions", rs.Losers)
	}
	if rs.CheckpointLSN == 0 {
		t.Error("shutdown did not checkpoint")
	}
	seen := map[int64]bool{}
	err = reopened.Exec(func(tx *slidb.Tx) error {
		return tx.ScanTable("drain", func(r slidb.Row) bool {
			seen[r[0].AsInt()] = true
			return true
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(committed) == 0 {
		t.Fatal("no transaction committed before the drain")
	}
	for _, id := range committed {
		if !seen[id] {
			t.Errorf("acknowledged write %d lost by the drain", id)
		}
	}
	t.Logf("drain preserved all %d acknowledged writes (%d rows recovered)", len(committed), len(seen))
}

// TestReadyzLifecycle walks /healthz and /readyz through the daemon states:
// ready while serving, unready while draining, and unready when the log
// wedges.
func TestReadyzLifecycle(t *testing.T) {
	eng := openTestEngine(t, t.TempDir())
	srv := newServer(eng)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("healthz = %d, want 200", code)
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("readyz = %d %q, want 200 ready", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "slidbd_draining 0") {
		t.Errorf("metrics = %d, want slidbd_draining 0 present; body %.200s", code, body)
	}

	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "draining") {
		t.Errorf("readyz after drain = %d %q, want 503 draining", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("healthz after drain = %d, want 200 (liveness is not readiness)", code)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "slidbd_draining 1") {
		t.Errorf("metrics after drain = %d, want slidbd_draining 1; body %.200s", code, body)
	}
}

// TestReadyzWedgedLog asserts that a wedged WAL (simulated crash) flips
// readiness without the server having been asked to drain.
func TestReadyzWedgedLog(t *testing.T) {
	eng := openTestEngine(t, t.TempDir())
	srv := newServer(eng)
	rec := httptest.NewRecorder()
	srv.readyz(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("readyz before crash = %d", rec.Code)
	}
	eng.SimulateCrash()
	rec = httptest.NewRecorder()
	srv.readyz(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "log wedged") {
		t.Errorf("readyz after crash = %d %q, want 503 log wedged", rec.Code, rec.Body.String())
	}
}
