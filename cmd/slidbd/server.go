package main

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"slidb"
)

// errDraining is returned by server.Exec once graceful shutdown has begun:
// the daemon stops admitting new transactions while in-flight ones finish.
var errDraining = errors.New("slidbd: draining, not admitting new transactions")

// server wraps an engine with the daemon's admission gate, drain logic and
// admin-plane HTTP endpoints. All transaction traffic of the daemon goes
// through Exec so that Shutdown can stop admission and wait for the in-flight
// count to reach zero.
type server struct {
	eng *slidb.Engine

	draining atomic.Bool
	closed   atomic.Bool
	// inflight counts transactions admitted but not yet returned from Exec.
	// A plain atomic (polled by Shutdown) rather than a WaitGroup: admission
	// races a starting drain, and WaitGroup forbids Add concurrent with Wait
	// at zero.
	inflight atomic.Int64
}

// newServer builds a server over an (already-recovered) engine and registers
// the daemon's own gauges alongside the engine collector's families —
// demonstrating that the obs registry is extensible by embedders.
func newServer(eng *slidb.Engine) *server {
	s := &server{eng: eng}
	reg := eng.Observe().Registry()
	reg.GaugeFunc("slidbd_inflight_txns",
		"Transactions admitted by the daemon and not yet completed.",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("slidbd_draining",
		"1 while the daemon is draining for shutdown (new transactions rejected), else 0.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	return s
}

// Exec runs one transaction through the daemon's admission gate. During a
// drain it rejects cleanly with errDraining instead of queueing work the
// shutdown would have to abandon.
func (s *server) Exec(fn func(*slidb.Tx) error) error {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		return errDraining
	}
	return s.eng.Exec(fn)
}

// Shutdown drains the daemon gracefully: stop admitting, wait (up to the
// deadline) for in-flight transactions to complete and for every appended
// log byte to become durable, checkpoint so the next open replays nothing,
// and close the engine. It is idempotent; the first error encountered is
// returned but every teardown step still runs.
func (s *server) Shutdown(deadline time.Duration) error {
	if s.closed.Swap(true) {
		return nil
	}
	s.draining.Store(true)
	dl := time.Now().Add(deadline)
	for time.Now().Before(dl) {
		if s.inflight.Load() == 0 && s.eng.DurableLag() == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Checkpoint even if stragglers remain past the deadline — it quiesces
	// the exec gate itself. A wedged log makes it fail; Close still runs.
	err := s.eng.Checkpoint()
	if errors.Is(err, slidb.ErrNotDurable) {
		err = nil
	}
	if cerr := s.eng.Close(); err == nil {
		err = cerr
	}
	return err
}

// handler builds the admin-plane mux: the engine's observability handler
// (/metrics, /debug/slowtx), liveness and readiness probes, and pprof.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	obsHandler := s.eng.ObsHandler()
	mux.Handle("/metrics", obsHandler)
	mux.Handle("/debug/slowtx", obsHandler)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process is up and serving. Readiness is /readyz.
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.readyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// readyz reports whether the daemon should receive traffic. The server is
// only constructed after slidb.OpenAt returns, so recovery has completed by
// the time this endpoint exists; it flips unready when the daemon is
// draining for shutdown or when a WAL sink error has wedged the log — the
// "wedged, not slow" signal Engine.LogErr makes explicit.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.eng.LogErr() != nil:
		http.Error(w, fmt.Sprintf("log wedged: %v", s.eng.LogErr()), http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}
