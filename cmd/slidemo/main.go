// Command slidemo is a tiny end-to-end demonstration of the slidb engine: it
// creates a table, runs a burst of concurrent transactions twice — once with
// the plain lock manager and once with Speculative Lock Inheritance — and
// prints the lock-manager statistics side by side so the effect of SLI is
// visible without running the full benchmark suite.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"slidb"
)

func main() {
	var (
		agents = flag.Int("agents", 8, "number of agent worker threads")
		rows   = flag.Int("rows", 1000, "rows in the demo table")
		xcts   = flag.Int("transactions", 20000, "transactions to run per mode")
	)
	flag.Parse()

	for _, sli := range []bool{false, true} {
		label := "baseline (SLI off)"
		if sli {
			label = "SLI on"
		}
		elapsed, stats := run(*agents, *rows, *xcts, sli)
		fmt.Printf("%-20s  %8.0f tx/s   lock acquisitions: %7d   latch collisions: %6d   SLI passed/reclaimed: %d/%d\n",
			label,
			float64(*xcts)/elapsed.Seconds(),
			stats.TotalAcquires(), stats.LatchContended,
			stats.SLIPassed, stats.SLIReclaimed)
	}
}

func run(agents, rows, xcts int, sli bool) (time.Duration, slidb.LockStats) {
	db := slidb.Open(slidb.Config{Agents: agents, SLI: sli})
	defer db.Close()

	schema := slidb.MustSchema(
		slidb.Column{Name: "id", Type: slidb.TypeInt},
		slidb.Column{Name: "counter", Type: slidb.TypeInt},
	)
	if err := db.CreateTable("items", schema, []string{"id"}); err != nil {
		log.Fatal(err)
	}
	if err := db.Exec(func(tx *slidb.Tx) error {
		for i := 0; i < rows; i++ {
			if err := tx.Insert("items", slidb.Row{slidb.Int(int64(i)), slidb.Int(0)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	per := xcts / agents
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := int64((a*per + i) % rows)
				err := db.Exec(func(tx *slidb.Tx) error {
					_, _, err := tx.Get("items", slidb.Int(id))
					return err
				})
				if err != nil {
					log.Println("transaction failed:", err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return elapsed, db.LockStats()
}
