package main

import (
	"strings"
	"testing"
)

func TestSplitPosn(t *testing.T) {
	cases := []struct {
		in   string
		file string
		line int
		col  int
	}{
		{"internal/core/tx.go:604:3", "internal/core/tx.go", 604, 3},
		{"/abs/path/file.go:12:34", "/abs/path/file.go", 12, 34},
		{"noline.go", "noline.go", 0, 0},
		{"file.go:7", "file.go", 0, 7}, // single trailing number parses as the innermost field
	}
	for _, c := range cases {
		file, line, col := splitPosn(c.in)
		if file != c.file || line != c.line || col != c.col {
			t.Errorf("splitPosn(%q) = %q, %d, %d; want %q, %d, %d",
				c.in, file, line, col, c.file, c.line, c.col)
		}
	}
}

func TestEmitAnnotations(t *testing.T) {
	// The shape go vet -json writes to stderr: "# pkg" comment lines
	// interleaved with one JSON object per package.
	input := `# slidb/internal/core
{
	"slidb/internal/core": {
		"walorder": [
			{
				"posn": "/work/internal/core/tx.go:604:3",
				"message": "return in Delete with the index remove still applied"
			},
			{
				"posn": "/work/internal/core/tx.go:610:3",
				"message": "another one"
			}
		]
	}
}
# slidb/internal/obs
{
	"slidb/internal/obs": {
		"hotalloc": [
			{
				"posn": "/work/internal/obs/collector.go:294:2",
				"message": "call to Observe allocates"
			}
		]
	}
}
`
	counts, err := emitAnnotations(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if counts["walorder"] != 2 || counts["hotalloc"] != 1 {
		t.Errorf("counts = %v; want walorder:2 hotalloc:1", counts)
	}
}

func TestEmitAnnotationsRejectsNonJSON(t *testing.T) {
	input := "internal/core/tx.go:10:2: undefined: frobnicate\n"
	if _, err := emitAnnotations(strings.NewReader(input)); err == nil {
		t.Error("expected an error for non-JSON vet output")
	}
}

func TestEmitAnnotationsEmpty(t *testing.T) {
	counts, err := emitAnnotations(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 0 {
		t.Errorf("counts = %v; want empty", counts)
	}
}
