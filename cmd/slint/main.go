// Command slint is slidb's project-specific vettool: eleven analyzers that
// pin the engine's concurrency and logging invariants at build time.
//
// Analyzers (see internal/slint for the full rationale of each):
//
//	densearith  arithmetic on wal.LSN outside its helper methods —
//	            byte-offset LSNs are ordered, not dense; lsn+1 is a bug
//	atomicmix   struct fields accessed both atomically and plainly, and
//	            by-value copies of atomic-bearing structs
//	proftimer   profiler category starts must reach their time.Since stop
//	            on every return path
//	errwedge    dropped errors from log-durability calls (logAppend,
//	            WriteRange(s), Flush(Async), raw syscall wrappers)
//	hotblock    no sleeps, channel blocking or mutex acquisition inside
//	            //slint:hotpath functions
//	metricname  metric names passed to obs.Registry constructors satisfy
//	            the slidb_ naming rules
//	walorder    Tx mutation paths follow the write-ahead protocol: every
//	            heap/index mutation registers an undo or rolls back inline,
//	            and the log record is appended before its undo is pushed
//	lockorder   cross-package lock acquisition graph built from per-function
//	            Facts; cycles are reported with both witness paths
//	hotalloc    //slint:hotpath functions and their callees (via Facts,
//	            across packages) are allocation-free
//	goroleak    every go statement in an engine package has a provable
//	            shutdown edge (stop channel, ctx.Done, channel range,
//	            Cond.Wait) or provably terminates
//	directives  the //slint: comments themselves are well-formed
//
// Directives:
//
//	//slint:hotpath                  (function doc) opt into hotblock+hotalloc
//	//slint:ignore <a>[,<a>...] <reason>  suppress findings from the listed
//	                                 analyzers on this or the next line;
//	                                 the reason is mandatory
//
// Usage:
//
//	go run ./cmd/slint ./...                 # standalone: wraps go vet
//	go run ./cmd/slint -github ./...         # CI: GitHub annotations + summary
//	go vet -vettool=$(go run ./cmd/slint -print-path) ./...
//
// The tool speaks the go vet -vettool protocol (unitchecker): when cmd/go
// invokes it with -V=full, -flags, or a *.cfg unit file it behaves as a vet
// analysis unit; invoked by a human with package patterns it re-executes
// itself through `go vet -vettool`. -print-path builds a stable binary
// (go run's temporary one disappears with the process) and prints its path
// for use in $(...) substitution; the binary is cached under $SLINT_CACHE_DIR
// (default: <tmp>/slint-bin) keyed by a hash of the analyzer sources, so
// repeated invocations — and CI runs restoring the cache directory — skip
// the rebuild entirely.
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"slidb/internal/slint"
)

func main() {
	args := os.Args[1:]
	if isVetProtocol(args) {
		unitchecker.Main(slint.Analyzers()...) // never returns
	}

	printPath := false
	github := false
	var patterns []string
	for _, a := range args {
		switch a {
		case "-print-path", "--print-path":
			printPath = true
		case "-github", "--github":
			github = true
		case "-h", "-help", "--help":
			usage(os.Stdout)
			return
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "slint: unknown flag %s\n", a)
				usage(os.Stderr)
				os.Exit(2)
			}
			patterns = append(patterns, a)
		}
	}

	if printPath {
		path, err := stableBinary()
		if err != nil {
			fmt.Fprintf(os.Stderr, "slint: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(path)
		return
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if github {
		os.Exit(runGitHub(patterns))
	}

	// Standalone mode: run the full suite by wrapping go vet around
	// ourselves. os.Executable is alive for the duration of the child.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "slint: cannot locate own binary: %v\n", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "slint: %v\n", err)
		os.Exit(1)
	}
}

// isVetProtocol reports whether cmd/go is driving us as a vettool: it probes
// with -V=full and -flags, then invokes one *.cfg analysis unit at a time.
func isVetProtocol(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// stableBinary builds slint to a location outside go run's ephemeral
// directory and returns the path, so $(go run ./cmd/slint -print-path)
// survives for the enclosing go vet. The binary name carries a hash of the
// analyzer sources: if a binary for the current sources already exists
// (e.g. restored by a CI cache), the build is skipped.
func stableBinary() (string, error) {
	dir := os.Getenv("SLINT_CACHE_DIR")
	if dir == "" {
		dir = filepath.Join(os.TempDir(), "slint-bin")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "slint")
	if h, err := sourceHash(); err == nil {
		path = filepath.Join(dir, "slint-"+h)
		if fi, statErr := os.Stat(path); statErr == nil && fi.Mode().IsRegular() && fi.Size() > 0 {
			return path, nil
		}
	}
	build := exec.Command("go", "build", "-o", path, "slidb/cmd/slint")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return "", fmt.Errorf("building stable slint binary: %w", err)
	}
	return path, nil
}

// sourceHash digests the analyzer sources (cmd/slint and internal/slint,
// fixtures excluded) into a short cache key.
func sourceHash() (string, error) {
	out, err := exec.Command("go", "list", "-f", "{{.Dir}}",
		"slidb/cmd/slint", "slidb/internal/slint", "slidb/internal/slint/slinttest").Output()
	if err != nil {
		return "", fmt.Errorf("go list: %w", err)
	}
	var files []string
	for _, dir := range strings.Fields(string(out)) {
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			return "", err
		}
		files = append(files, matches...)
	}
	sort.Strings(files)
	h := sha256.New()
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %d\n", filepath.Base(f), len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16], nil
}

// runGitHub runs the suite in go vet's JSON mode and re-emits every finding
// as a GitHub Actions workflow annotation (::error file=…,line=…), then
// prints a per-analyzer summary count. Exit status 1 if anything fired.
func runGitHub(patterns []string) int {
	// Use the hash-named stable binary so CI's restored cache is reused;
	// fall back to the running binary if the build fails.
	self, err := stableBinary()
	if err != nil {
		self, err = os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "slint: cannot locate own binary: %v\n", err)
			return 1
		}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self, "-json"}, patterns...)...)
	var stderr bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()
	counts, parseErr := emitAnnotations(&stderr)
	if parseErr != nil {
		// Not vet JSON (e.g. a compile error): surface the raw output.
		os.Stderr.Write(stderr.Bytes())
		fmt.Fprintf(os.Stderr, "slint: %v\n", parseErr)
		return 1
	}
	total := 0
	var names []string
	for name, n := range counts {
		total += n
		names = append(names, name)
	}
	if total == 0 {
		if runErr != nil {
			// vet failed without reporting diagnostics: broken build etc.
			os.Stderr.Write(stderr.Bytes())
			fmt.Fprintf(os.Stderr, "slint: %v\n", runErr)
			return 1
		}
		fmt.Println("slint: clean")
		return 0
	}
	sort.Strings(names)
	var parts []string
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s: %d", name, counts[name]))
	}
	fmt.Printf("slint: %d finding(s) — %s\n", total, strings.Join(parts, ", "))
	return 1
}

// vet -json groups diagnostics as {"pkgpath": {"analyzer": [diag, ...]}},
// one JSON object per package, interleaved with "# pkgpath" comment lines
// on stderr.
type vetDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// emitAnnotations parses go vet -json output from r, prints one GitHub
// ::error annotation per diagnostic, and returns per-analyzer counts.
func emitAnnotations(r io.Reader) (map[string]int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var jsonBuf bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		jsonBuf.WriteString(line)
		jsonBuf.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	cwd, _ := os.Getwd()
	counts := make(map[string]int)
	dec := json.NewDecoder(&jsonBuf)
	for dec.More() {
		var unit map[string]map[string][]vetDiag
		if err := dec.Decode(&unit); err != nil {
			return nil, fmt.Errorf("parsing vet -json output: %w", err)
		}
		for _, byAnalyzer := range unit {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					counts[analyzer]++
					file, line, col := splitPosn(d.Posn)
					if cwd != "" {
						if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
							file = rel
						}
					}
					fmt.Printf("::error file=%s,line=%d,col=%d,title=slint/%s::%s\n",
						file, line, col, analyzer, d.Message)
				}
			}
		}
	}
	return counts, nil
}

// splitPosn breaks a "path/file.go:12:34" position into its parts.
func splitPosn(posn string) (file string, line, col int) {
	file = posn
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			col = n
			file = file[:i]
		}
	}
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			line = n
			file = file[:i]
		}
	}
	return file, line, col
}

func usage(w *os.File) {
	fmt.Fprintf(w, `usage:
  slint [packages]      run the analyzer suite (wraps go vet -vettool)
  slint -github [pkgs]  CI mode: emit GitHub ::error annotations and a
                        per-analyzer summary; exit 1 on any finding
  slint -print-path     build (or reuse a cached) stable binary and print
                        its path, for go vet -vettool=$(go run ./cmd/slint
                        -print-path); cache dir: $SLINT_CACHE_DIR
`)
}
