// Command slint is slidb's project-specific vettool: six analyzers that pin
// the engine's concurrency and logging invariants at build time.
//
// Analyzers (see internal/slint for the full rationale of each):
//
//	densearith  arithmetic on wal.LSN outside its helper methods —
//	            byte-offset LSNs are ordered, not dense; lsn+1 is a bug
//	atomicmix   struct fields accessed both atomically and plainly, and
//	            by-value copies of atomic-bearing structs
//	proftimer   profiler category starts must reach their time.Since stop
//	            on every return path
//	errwedge    dropped errors from log-durability calls (logAppend,
//	            WriteRange(s), Flush(Async), raw syscall wrappers)
//	hotblock    no sleeps, channel blocking or mutex acquisition inside
//	            //slint:hotpath functions
//	metricname  metric names passed to obs.Registry constructors satisfy
//	            the slidb_ naming rules
//	directives  the //slint: comments themselves are well-formed
//
// Directives:
//
//	//slint:hotpath                      (function doc) opt into hotblock
//	//slint:ignore <analyzer> <reason>   suppress a finding on this or the
//	                                     next line; the reason is mandatory
//
// Usage:
//
//	go run ./cmd/slint ./...                 # standalone: wraps go vet
//	go vet -vettool=$(go run ./cmd/slint -print-path) ./...
//
// The tool speaks the go vet -vettool protocol (unitchecker): when cmd/go
// invokes it with -V=full, -flags, or a *.cfg unit file it behaves as a vet
// analysis unit; invoked by a human with package patterns it re-executes
// itself through `go vet -vettool`. -print-path builds a stable binary
// (go run's temporary one disappears with the process) and prints its path
// for use in $(...) substitution.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"slidb/internal/slint"
)

func main() {
	args := os.Args[1:]
	if isVetProtocol(args) {
		unitchecker.Main(slint.Analyzers()...) // never returns
	}

	printPath := false
	var patterns []string
	for _, a := range args {
		switch a {
		case "-print-path", "--print-path":
			printPath = true
		case "-h", "-help", "--help":
			usage(os.Stdout)
			return
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "slint: unknown flag %s\n", a)
				usage(os.Stderr)
				os.Exit(2)
			}
			patterns = append(patterns, a)
		}
	}

	if printPath {
		path, err := stableBinary()
		if err != nil {
			fmt.Fprintf(os.Stderr, "slint: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(path)
		return
	}

	// Standalone mode: run the full suite by wrapping go vet around
	// ourselves. os.Executable is alive for the duration of the child.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "slint: cannot locate own binary: %v\n", err)
		os.Exit(1)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "slint: %v\n", err)
		os.Exit(1)
	}
}

// isVetProtocol reports whether cmd/go is driving us as a vettool: it probes
// with -V=full and -flags, then invokes one *.cfg analysis unit at a time.
func isVetProtocol(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// stableBinary builds slint to a deterministic location outside go run's
// ephemeral directory and returns the path, so
// $(go run ./cmd/slint -print-path) survives for the enclosing go vet.
func stableBinary() (string, error) {
	dir := filepath.Join(os.TempDir(), "slint-bin")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "slint")
	build := exec.Command("go", "build", "-o", path, "slidb/cmd/slint")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return "", fmt.Errorf("building stable slint binary: %w", err)
	}
	return path, nil
}

func usage(w *os.File) {
	fmt.Fprintf(w, `usage:
  slint [packages]      run the analyzer suite (wraps go vet -vettool)
  slint -print-path     build a stable binary and print its path, for
                        go vet -vettool=$(go run ./cmd/slint -print-path)
`)
}
