// Command slibench regenerates the evaluation figures of "Improving OLTP
// Scalability using Speculative Lock Inheritance" (VLDB 2009) against the
// slidb storage manager, and can also run individual workloads.
//
// Usage examples:
//
//	slibench -figure 1                     # lock manager contention vs load
//	slibench -figure 11 -scale paper       # SLI speedups at paper-like scale
//	slibench -ablation hot-threshold       # SLI design-choice ablation
//	slibench -workload ndbb/mix -agents 16 -sli -duration 5s
//	slibench -list                         # show available workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"slidb/internal/figures"
)

func main() {
	var (
		figureN  = flag.Int("figure", 0, "paper figure to regenerate (1, 6, 7, 8, 9, 10, 11); 0 = none")
		ablation = flag.String("ablation", "", "ablation study to run (hot-threshold, levels, bimodal, roving-hotspot)")
		wl       = flag.String("workload", "", "single workload to run, e.g. ndbb/mix, tpcb/tpcb, tpcc/Payment")
		scale    = flag.String("scale", "quick", "dataset/measurement scale: quick, default, or paper")
		agents   = flag.Int("agents", 0, "agent (worker) count for -workload runs; 0 = scale default")
		sli      = flag.Bool("sli", false, "enable Speculative Lock Inheritance for -workload runs")
		duration = flag.Duration("duration", 0, "override measurement duration")
		warmup   = flag.Duration("warmup", 0, "override warmup duration")
		list     = flag.Bool("list", false, "list available workloads, figures and ablations")
		all      = flag.Bool("all-figures", false, "regenerate every figure")
		subset   = flag.String("workloads", "", "comma-separated workload keys to restrict per-workload figures to")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range figures.AllWorkloads() {
			fmt.Println("  " + w)
		}
		fmt.Println("figures: 1 6 7 8 9 10 11")
		fmt.Println("ablations: " + strings.Join(figures.Ablations(), " "))
		return
	}

	opt := optionsForScale(*scale)
	if *duration > 0 {
		opt.Duration = *duration
	}
	if *warmup > 0 {
		opt.Warmup = *warmup
	}
	if *subset != "" {
		for _, w := range strings.Split(*subset, ",") {
			if w = strings.TrimSpace(w); w != "" {
				opt.Workloads = append(opt.Workloads, w)
			}
		}
	}

	switch {
	case *all:
		for _, n := range []int{1, 6, 7, 8, 9, 10, 11} {
			emitFigure(n, opt)
		}
	case *figureN != 0:
		emitFigure(*figureN, opt)
	case *ablation != "":
		tbl, err := figures.Ablation(*ablation, opt)
		exitOn(err)
		fmt.Println(tbl)
	case *wl != "":
		runSingle(*wl, opt, *agents, *sli)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func optionsForScale(scale string) figures.Options {
	switch scale {
	case "paper":
		return figures.PaperOptions()
	case "default":
		return figures.DefaultOptions()
	case "quick":
		return figures.DefaultOptions().Quick()
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q (use quick, default, or paper)\n", scale)
		os.Exit(2)
		return figures.Options{}
	}
}

func emitFigure(n int, opt figures.Options) {
	start := time.Now()
	tbl, err := figures.Figure(n, opt)
	exitOn(err)
	fmt.Println(tbl)
	fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
}

func runSingle(wl string, opt figures.Options, agents int, sli bool) {
	if agents <= 0 {
		agents = opt.PeakAgents
	}
	opt.Workloads = []string{wl}
	// Reuse the Figure 6/10 machinery for a single workload: it reports both
	// throughput and the breakdown.
	var (
		tbl figures.Table
		err error
	)
	opt.PeakAgents = agents
	if sli {
		tbl, err = figures.Figure10(opt)
	} else {
		tbl, err = figures.Figure6(opt)
	}
	exitOn(err)
	fmt.Println(tbl)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "slibench:", err)
		os.Exit(1)
	}
}
