// Command slibench regenerates the evaluation figures of "Improving OLTP
// Scalability using Speculative Lock Inheritance" (VLDB 2009) against the
// slidb storage manager, and can also run individual workloads.
//
// Usage examples:
//
//	slibench -figure 1                     # lock manager contention vs load
//	slibench -figure 11 -scale paper       # SLI speedups at paper-like scale
//	slibench -ablation hot-threshold       # SLI design-choice ablation
//	slibench -ablation sli-elr             # SLI x Early-Lock-Release grid
//	slibench -ablation abort-elr           # ELR for aborts under forced rollbacks
//	slibench -workload tpcb/tpcb -sli -elr -abortrate 0.3  # CLR rollback path
//	slibench -workload ndbb/mix -agents 16 -sli -duration 5s
//	slibench -workload tpcb/tpcb -sli -elr -async     # scalable commit pipeline
//	slibench -workload tpcb/tpcb -datadir /tmp/slidb  # durable run (real fsyncs)
//	slibench -ablation log-tail -datadir /tmp/slidb   # adaptive group commit x publish fence grid
//	slibench -workload tpcb/tpcb -datadir /tmp/slidb -adaptivegc -prealloc  # self-tuning log tail
//	slibench -ablation log-shards -datadir /tmp/slidb  # 1/2/4 sharded virtual logs
//	slibench -workload tpcb/tpcb -logshards 4 -autologbuf -sli -elr -async  # sharded logs, auto-sized buffers
//	slibench -recover /tmp/slidb/tpcb_tpcb-1234       # replay a data directory
//	slibench -benchout BENCH_quick.json    # baseline vs SLI vs SLI+ELR, JSON artifact
//	slibench -list                         # show available workloads
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"slidb/internal/core"
	"slidb/internal/figures"
	"slidb/internal/profiler"
	"slidb/internal/record"
)

func main() {
	var (
		figureN     = flag.Int("figure", 0, "paper figure to regenerate (1, 6, 7, 8, 9, 10, 11); 0 = none")
		ablation    = flag.String("ablation", "", "ablation study to run (hot-threshold, levels, bimodal, roving-hotspot, sli-elr, log-buffer, log-lsn, log-tail, abort-elr, log-shards)")
		wl          = flag.String("workload", "", "single workload to run, e.g. ndbb/mix, tpcb/tpcb, tpcc/Payment")
		scale       = flag.String("scale", "quick", "dataset/measurement scale: quick, default, or paper")
		agents      = flag.Int("agents", 0, "agent (worker) count for -workload runs; 0 = scale default")
		clients     = flag.Int("clients", 0, "closed-loop client goroutines; 0 = one per agent (use > agents to exercise -async pipelining)")
		sli         = flag.Bool("sli", false, "enable Speculative Lock Inheritance for -workload runs")
		elr         = flag.Bool("elr", false, "enable Early Lock Release on both the commit and abort paths (locks released at outcome-record append, not after the fsync)")
		elrAborts   = flag.Bool("elraborts", false, "enable Early Lock Release on the abort path only (see -elr; the two knobs are independent in core.Config)")
		async       = flag.Bool("async", false, "enable flush pipelining (agents run ahead of the log force, bounded by the pipeline depth)")
		mutexLog    = flag.Bool("mutexlog", false, "use the legacy mutex-per-append WAL path instead of the consolidated log buffer (ablation baseline)")
		latchedLog  = flag.Bool("latchedlog", false, "reserve log space under the PR-3 latch instead of the fetch-and-add on the virtual head (log-lsn ablation baseline)")
		abortRate   = flag.Float64("abortrate", 0, "fraction of transactions forced to abort after doing their work (exercises the CLR rollback path; used by -workload and as the -ablation abort-elr rate)")
		adaptiveGC  = flag.Bool("adaptivegc", false, "replace the fixed group-commit window with the self-tuning controller (bounds set by -gcmin/-gcmax)")
		gcMin       = flag.Duration("gcmin", 0, "lower bound for the adaptive group-commit window; 0 = engine default")
		gcMax       = flag.Duration("gcmax", 0, "upper bound for the adaptive group-commit window; 0 = engine default")
		prealloc    = flag.Bool("prealloc", false, "preallocate durable WAL segments at creation (fallocate, falling back to truncate); only meaningful with -datadir")
		logShards   = flag.Int("logshards", 0, "number of sharded virtual logs (cross-shard commits pay a two-phase flush rendezvous); 0 = single log, or auto-detect when reopening a sharded -datadir")
		autoLogBuf  = flag.Bool("autologbuf", false, "auto-size the log buffer from the profiler's buffer-full signal instead of the fixed LogBufferBytes")
		strictFence = flag.Bool("strictfence", false, "use the strict in-order spin publish fence instead of the relaxed completion-tracking fence (log-tail ablation baseline)")
		gcWindow    = flag.Duration("gcwindow", 0, "group-commit window for -workload/-benchout engines")
		flushDelay  = flag.Duration("flushdelay", 0, "simulated log-force latency for -workload/-benchout engines")
		duration    = flag.Duration("duration", 0, "override measurement duration")
		warmup      = flag.Duration("warmup", 0, "override warmup duration")
		list        = flag.Bool("list", false, "list available workloads, figures and ablations")
		all         = flag.Bool("all-figures", false, "regenerate every figure")
		subset      = flag.String("workloads", "", "comma-separated workload keys to restrict per-workload figures to")
		datadir     = flag.String("datadir", "", "root directory for durable engines: runs open disk-backed engines (real WAL fsyncs) in per-run subdirectories")
		recoverDir  = flag.String("recover", "", "open the given data directory, report crash-recovery statistics and recovered row counts, checkpoint, and exit")
		benchout    = flag.String("benchout", "", "run TPC-B and TM-1 under baseline / SLI / SLI+ELR and write the results to the given JSON file")
		metricsAddr = flag.String("metricsaddr", "", "serve /metrics (Prometheus) and /debug/slowtx for the engine currently under measurement on this address, e.g. :9100")
	)
	flag.Parse()

	if *recoverDir != "" {
		runRecover(*recoverDir)
		return
	}

	if *list {
		fmt.Println("workloads:")
		for _, w := range figures.AllWorkloads() {
			fmt.Println("  " + w)
		}
		fmt.Println("figures: 1 6 7 8 9 10 11")
		fmt.Println("ablations: " + strings.Join(figures.Ablations(), " "))
		return
	}

	opt := optionsForScale(*scale)
	if *duration > 0 {
		opt.Duration = *duration
	}
	if *warmup > 0 {
		opt.Warmup = *warmup
	}
	if *subset != "" {
		for _, w := range strings.Split(*subset, ",") {
			if w = strings.TrimSpace(w); w != "" {
				opt.Workloads = append(opt.Workloads, w)
			}
		}
	}
	if *datadir != "" {
		exitOn(os.MkdirAll(*datadir, 0o755))
		opt.DataDir = *datadir
	}
	opt.EarlyLockRelease = *elr
	opt.EarlyLockReleaseAborts = *elr || *elrAborts
	opt.AsyncCommit = *async
	opt.MutexLog = *mutexLog
	opt.LatchedLog = *latchedLog
	opt.GroupCommitWindow = *gcWindow
	opt.AdaptiveGroupCommit = *adaptiveGC
	opt.GroupCommitMin = *gcMin
	opt.GroupCommitMax = *gcMax
	opt.PreallocateSegments = *prealloc
	opt.StrictFence = *strictFence
	opt.LogShards = *logShards
	opt.AutoSizeLogBuffer = *autoLogBuf
	opt.LogFlushDelay = *flushDelay
	opt.Clients = *clients
	opt.AbortRate = *abortRate
	if *metricsAddr != "" {
		opt.OnEngine = startMetricsServer(*metricsAddr)
	}

	switch {
	case *benchout != "":
		runBench(opt, *agents, *benchout)
	case *all:
		for _, n := range []int{1, 6, 7, 8, 9, 10, 11} {
			emitFigure(n, opt)
		}
	case *figureN != 0:
		emitFigure(*figureN, opt)
	case *ablation != "":
		tbl, err := figures.Ablation(*ablation, opt)
		exitOn(err)
		fmt.Println(tbl)
	case *wl != "":
		runSingle(*wl, opt, *agents, *sli)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// startMetricsServer serves the observability surface of whichever engine
// the harness is currently measuring. Figure sweeps build and discard many
// engines, so the returned figures.OnEngine hook retargets the handler
// atomically each time a new engine comes up; scrapes that land between
// engines get a 503 rather than stale data.
func startMetricsServer(addr string) func(*core.Engine) {
	var cur atomic.Pointer[http.Handler]
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		h := cur.Load()
		if h == nil {
			http.Error(w, "no engine under measurement yet", http.StatusServiceUnavailable)
			return
		}
		(*h).ServeHTTP(w, r)
	})
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "slibench: metrics server:", err)
		}
	}()
	return func(e *core.Engine) {
		h := e.ObsHandler()
		cur.Store(&h)
	}
}

func optionsForScale(scale string) figures.Options {
	switch scale {
	case "paper":
		return figures.PaperOptions()
	case "default":
		return figures.DefaultOptions()
	case "quick":
		return figures.DefaultOptions().Quick()
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q (use quick, default, or paper)\n", scale)
		os.Exit(2)
		return figures.Options{}
	}
}

func emitFigure(n int, opt figures.Options) {
	start := time.Now()
	tbl, err := figures.Figure(n, opt)
	exitOn(err)
	fmt.Println(tbl)
	fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
}

func runSingle(wl string, opt figures.Options, agents int, sli bool) {
	res, es, err := figures.RunWorkload(wl, opt, sli, agents)
	exitOn(err)
	s := res.Breakdown.GroupedShares()
	ls := res.LockStats
	fmt.Printf("%s  (sli=%v elr=%v elraborts=%v async=%v mutexlog=%v latchedlog=%v adaptivegc=%v strictfence=%v prealloc=%v abortrate=%.2f)\n",
		wl, sli, opt.EarlyLockRelease, opt.EarlyLockReleaseAborts, opt.AsyncCommit, opt.MutexLog, opt.LatchedLog,
		opt.AdaptiveGroupCommit, opt.StrictFence, opt.PreallocateSegments, opt.AbortRate)
	fmt.Printf("  throughput        %.1f tps (%d committed, %d failed, %d errors)\n",
		res.Throughput, res.Committed, res.Failed, res.Errors)
	fmt.Printf("  avg latency       %v\n", res.AvgLatency.Round(time.Microsecond))
	fmt.Printf("  breakdown         %v\n", s)
	fmt.Printf("  log waits         reserve %v, buffer-full %v (totals)\n",
		res.Breakdown.Get(profiler.LogReserveWait).Round(time.Microsecond),
		res.Breakdown.Get(profiler.LogBufferFullWait).Round(time.Microsecond))
	fmt.Printf("  sli passed        %d (reclaimed %d, invalidated %d, discarded %d)\n",
		ls.SLIPassed, ls.SLIReclaimed, ls.SLIInvalidated, ls.SLIDiscarded)
	fmt.Printf("  elr releases      %d commits, %d aborts\n", ls.ELRReleases, es.ELRAborts)
	fmt.Printf("  abort path        undo %v, clr-append %v (totals; %d undo failures)\n",
		res.Breakdown.Get(profiler.UndoWork).Round(time.Microsecond),
		res.Breakdown.Get(profiler.AbortLogWork).Round(time.Microsecond),
		es.UndoFailures)
	fmt.Printf("  durable lag       %d bytes (at measurement end)\n", es.DurableLag)
	fmt.Printf("  log tail          %d flush cycles, %.2f writes/cycle, avg window %v, fence wait %v\n",
		es.FlushCycles, es.WritesPerCycle(), es.AvgWindow.Round(time.Microsecond), es.FenceWait.Round(time.Microsecond))
	fmt.Printf("  gc window         %v final (adaptive=%v)\n", es.FinalWindow.Round(time.Microsecond), opt.AdaptiveGroupCommit)
	if es.LogShards > 1 {
		xfrac := 0.0
		if es.Committed > 0 {
			xfrac = float64(es.CrossShardCommits) / float64(es.Committed)
		}
		fmt.Printf("  log shards        %d (%d cross-shard commits, %.0f%% of committed)\n",
			es.LogShards, es.CrossShardCommits, 100*xfrac)
		for s := 0; s < es.LogShards; s++ {
			fmt.Printf("    shard %02d        reserve %v, %.2f writes/cycle\n",
				s, es.ShardReserveWait[s].Round(time.Microsecond), es.ShardWritesPerCycle[s])
		}
	}
}

// benchConfig is one configuration of the -benchout comparison sweep.
type benchConfig struct {
	Name  string
	SLI   bool
	ELR   bool
	Async bool
}

// benchEntry is one row of the emitted BENCH_*.json artifact, tracking the
// perf trajectory of the commit pipeline across PRs.
type benchEntry struct {
	Workload      string  `json:"workload"`
	Config        string  `json:"config"`
	Agents        int     `json:"agents"`
	TPS           float64 `json:"tps"`
	AvgLatencyUs  float64 `json:"avg_latency_us"`
	LogFlushShare float64 `json:"log_flush_share"`
	LockWaitMs    float64 `json:"lock_wait_ms_total"`
	ReserveWaitMs float64 `json:"log_reserve_wait_ms_total"`
	SLIPassed     uint64  `json:"sli_passed"`
	ELRReleases   uint64  `json:"elr_releases"`
	// DurableLag is in bytes of unforced log (byte-offset LSNs).
	DurableLag uint64 `json:"durable_lag"`
	// ELRAborts counts rollbacks that released their locks at abort-record
	// append (the EarlyLockReleaseAborts path); UndoFailures counts undo
	// actions that failed during rollback and should always be zero.
	ELRAborts    uint64 `json:"elr_aborts"`
	UndoFailures uint64 `json:"undo_failures"`
	Errors       uint64 `json:"errors"`
	// Log-tail efficiency: flusher cycles over the run, physical sink writes
	// per cycle (~1 on the vectored durable path, 0 in-memory), the mean
	// group-commit window actually waited, and cumulative publish-fence wait.
	FlushCycles    uint64  `json:"flush_cycles"`
	WritesPerCycle float64 `json:"writes_per_cycle"`
	AvgWindowUs    float64 `json:"avg_window_us"`
	FenceWaitUs    float64 `json:"fence_wait_us"`
	// Sharded-log shape: the number of virtual logs the run used, how many
	// commits paid the cross-shard rendezvous, and the per-shard reserve-wait
	// and writes-per-cycle views (index = shard; one hot entry = routing
	// skew). Absent (zero / null) in artifacts from pre-shard builds.
	LogShards           int       `json:"log_shards"`
	CrossShardCommits   uint64    `json:"cross_shard_commits"`
	ShardReserveWaitMs  []float64 `json:"shard_reserve_wait_ms"`
	ShardWritesPerCycle []float64 `json:"shard_writes_per_cycle"`
}

// runBench sweeps TPC-B and the TM-1 (NDBB) mix across the baseline, SLI,
// and SLI+ELR configurations with a non-zero log-force latency, prints the
// comparison, and writes the rows as a JSON artifact for CI to archive.
func runBench(opt figures.Options, agents int, outPath string) {
	if agents <= 0 {
		agents = opt.PeakAgents
	}
	// The commit pipeline only matters when forcing the log costs something;
	// default to a realistic latency unless the caller chose one.
	if opt.LogFlushDelay == 0 {
		opt.LogFlushDelay = 500 * time.Microsecond
	}
	if opt.GroupCommitWindow == 0 {
		opt.GroupCommitWindow = 100 * time.Microsecond
	}
	if opt.Clients == 0 {
		// Overcommit clients relative to agents so the sli+elr config can
		// fill the AsyncCommit pipeline (a blocked client per agent keeps
		// the in-flight window at one).
		opt.Clients = 4 * agents
	}
	configs := []benchConfig{
		{Name: "baseline"},
		{Name: "sli", SLI: true},
		{Name: "sli+elr", SLI: true, ELR: true, Async: true},
	}
	var entries []benchEntry
	fmt.Printf("%-12s %-10s %12s %14s %12s %12s\n", "workload", "config", "tps", "avg-lat-us", "log-flush-%", "durable-lag")
	for _, wl := range []string{figures.WLTPCB, figures.WLNDBBMix} {
		for _, c := range configs {
			o := opt
			o.EarlyLockRelease = c.ELR
			o.EarlyLockReleaseAborts = c.ELR
			o.AsyncCommit = c.Async
			res, es, err := figures.RunWorkload(wl, o, c.SLI, agents)
			exitOn(err)
			e := benchEntry{
				Workload:      wl,
				Config:        c.Name,
				Agents:        agents,
				TPS:           res.Throughput,
				AvgLatencyUs:  float64(res.AvgLatency.Microseconds()),
				LogFlushShare: res.Breakdown.GroupedShares().LogFlush,
				LockWaitMs:    res.Breakdown.Get(profiler.LockWait).Seconds() * 1000,
				ReserveWaitMs: res.Breakdown.Get(profiler.LogReserveWait).Seconds() * 1000,
				SLIPassed:     res.LockStats.SLIPassed,
				ELRReleases:   res.LockStats.ELRReleases,
				DurableLag:    es.DurableLag,
				ELRAborts:     es.ELRAborts,
				UndoFailures:  es.UndoFailures,
				Errors:        res.Errors,

				FlushCycles:    es.FlushCycles,
				WritesPerCycle: es.WritesPerCycle(),
				AvgWindowUs:    float64(es.AvgWindow.Nanoseconds()) / 1e3,
				FenceWaitUs:    float64(es.FenceWait.Nanoseconds()) / 1e3,

				LogShards:         es.LogShards,
				CrossShardCommits: es.CrossShardCommits,
			}
			for s := 0; s < es.LogShards; s++ {
				e.ShardReserveWaitMs = append(e.ShardReserveWaitMs,
					es.ShardReserveWait[s].Seconds()*1000)
				e.ShardWritesPerCycle = append(e.ShardWritesPerCycle,
					es.ShardWritesPerCycle[s])
			}
			entries = append(entries, e)
			fmt.Printf("%-12s %-10s %12.1f %14.0f %12.1f %12d\n",
				e.Workload, e.Config, e.TPS, e.AvgLatencyUs, 100*e.LogFlushShare, e.DurableLag)
		}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	exitOn(err)
	exitOn(os.WriteFile(outPath, append(data, '\n'), 0o644))
	fmt.Printf("\nwrote %d results to %s\n", len(entries), outPath)
}

// runRecover opens a data directory left behind by a durable run (cleanly
// closed or crashed), prints what restart had to replay and what survived,
// writes a fresh checkpoint so the next open is cheap, and exits.
func runRecover(dir string) {
	start := time.Now()
	e, err := core.OpenAt(dir, core.Config{})
	exitOn(err)
	defer e.Close()
	st := e.RecoveryStats()
	fmt.Printf("recovered %s in %v\n", dir, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  checkpoint LSN    %d\n", st.CheckpointLSN)
	fmt.Printf("  tables restored   %d (%d rows)\n", st.TablesRestored, st.RowsRestored)
	fmt.Printf("  log tail scanned  %d records\n", st.LogRecordsScanned)
	fmt.Printf("  winners / losers  %d / %d (%d rollbacks fully logged)\n",
		st.Winners, st.Losers, st.RollbacksComplete)
	fmt.Printf("  records redone    %d (+%d CLRs, %d DDL)\n",
		st.RecordsRedone, st.CLRsRedone, st.DDLReplayed)
	fmt.Printf("  records undone    %d (%d tx rolled back, %d rollbacks resumed)\n",
		st.RecordsUndone, st.TxUndone, st.RollbacksResumed)
	fmt.Println("tables:")
	for _, tbl := range e.Catalog().Tables() {
		rows := 0
		err := e.Exec(func(tx *core.Tx) error {
			return tx.ScanTable(tbl.Name, func(record.Row) bool { rows++; return true })
		})
		exitOn(err)
		fmt.Printf("  %-24s %d rows\n", tbl.Name, rows)
	}
	exitOn(e.Checkpoint())
	fmt.Println("checkpointed; log truncated")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "slibench:", err)
		os.Exit(1)
	}
}
