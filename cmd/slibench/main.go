// Command slibench regenerates the evaluation figures of "Improving OLTP
// Scalability using Speculative Lock Inheritance" (VLDB 2009) against the
// slidb storage manager, and can also run individual workloads.
//
// Usage examples:
//
//	slibench -figure 1                     # lock manager contention vs load
//	slibench -figure 11 -scale paper       # SLI speedups at paper-like scale
//	slibench -ablation hot-threshold       # SLI design-choice ablation
//	slibench -workload ndbb/mix -agents 16 -sli -duration 5s
//	slibench -workload tpcb/tpcb -datadir /tmp/slidb  # durable run (real fsyncs)
//	slibench -recover /tmp/slidb/tpcb_tpcb-1234       # replay a data directory
//	slibench -list                         # show available workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"slidb/internal/core"
	"slidb/internal/figures"
	"slidb/internal/record"
)

func main() {
	var (
		figureN    = flag.Int("figure", 0, "paper figure to regenerate (1, 6, 7, 8, 9, 10, 11); 0 = none")
		ablation   = flag.String("ablation", "", "ablation study to run (hot-threshold, levels, bimodal, roving-hotspot)")
		wl         = flag.String("workload", "", "single workload to run, e.g. ndbb/mix, tpcb/tpcb, tpcc/Payment")
		scale      = flag.String("scale", "quick", "dataset/measurement scale: quick, default, or paper")
		agents     = flag.Int("agents", 0, "agent (worker) count for -workload runs; 0 = scale default")
		sli        = flag.Bool("sli", false, "enable Speculative Lock Inheritance for -workload runs")
		duration   = flag.Duration("duration", 0, "override measurement duration")
		warmup     = flag.Duration("warmup", 0, "override warmup duration")
		list       = flag.Bool("list", false, "list available workloads, figures and ablations")
		all        = flag.Bool("all-figures", false, "regenerate every figure")
		subset     = flag.String("workloads", "", "comma-separated workload keys to restrict per-workload figures to")
		datadir    = flag.String("datadir", "", "root directory for durable engines: runs open disk-backed engines (real WAL fsyncs) in per-run subdirectories")
		recoverDir = flag.String("recover", "", "open the given data directory, report crash-recovery statistics and recovered row counts, checkpoint, and exit")
	)
	flag.Parse()

	if *recoverDir != "" {
		runRecover(*recoverDir)
		return
	}

	if *list {
		fmt.Println("workloads:")
		for _, w := range figures.AllWorkloads() {
			fmt.Println("  " + w)
		}
		fmt.Println("figures: 1 6 7 8 9 10 11")
		fmt.Println("ablations: " + strings.Join(figures.Ablations(), " "))
		return
	}

	opt := optionsForScale(*scale)
	if *duration > 0 {
		opt.Duration = *duration
	}
	if *warmup > 0 {
		opt.Warmup = *warmup
	}
	if *subset != "" {
		for _, w := range strings.Split(*subset, ",") {
			if w = strings.TrimSpace(w); w != "" {
				opt.Workloads = append(opt.Workloads, w)
			}
		}
	}
	if *datadir != "" {
		exitOn(os.MkdirAll(*datadir, 0o755))
		opt.DataDir = *datadir
	}

	switch {
	case *all:
		for _, n := range []int{1, 6, 7, 8, 9, 10, 11} {
			emitFigure(n, opt)
		}
	case *figureN != 0:
		emitFigure(*figureN, opt)
	case *ablation != "":
		tbl, err := figures.Ablation(*ablation, opt)
		exitOn(err)
		fmt.Println(tbl)
	case *wl != "":
		runSingle(*wl, opt, *agents, *sli)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func optionsForScale(scale string) figures.Options {
	switch scale {
	case "paper":
		return figures.PaperOptions()
	case "default":
		return figures.DefaultOptions()
	case "quick":
		return figures.DefaultOptions().Quick()
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q (use quick, default, or paper)\n", scale)
		os.Exit(2)
		return figures.Options{}
	}
}

func emitFigure(n int, opt figures.Options) {
	start := time.Now()
	tbl, err := figures.Figure(n, opt)
	exitOn(err)
	fmt.Println(tbl)
	fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
}

func runSingle(wl string, opt figures.Options, agents int, sli bool) {
	if agents <= 0 {
		agents = opt.PeakAgents
	}
	opt.Workloads = []string{wl}
	// Reuse the Figure 6/10 machinery for a single workload: it reports both
	// throughput and the breakdown.
	var (
		tbl figures.Table
		err error
	)
	opt.PeakAgents = agents
	if sli {
		tbl, err = figures.Figure10(opt)
	} else {
		tbl, err = figures.Figure6(opt)
	}
	exitOn(err)
	fmt.Println(tbl)
}

// runRecover opens a data directory left behind by a durable run (cleanly
// closed or crashed), prints what restart had to replay and what survived,
// writes a fresh checkpoint so the next open is cheap, and exits.
func runRecover(dir string) {
	start := time.Now()
	e, err := core.OpenAt(dir, core.Config{})
	exitOn(err)
	defer e.Close()
	st := e.RecoveryStats()
	fmt.Printf("recovered %s in %v\n", dir, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  checkpoint LSN    %d\n", st.CheckpointLSN)
	fmt.Printf("  tables restored   %d (%d rows)\n", st.TablesRestored, st.RowsRestored)
	fmt.Printf("  log tail scanned  %d records\n", st.LogRecordsScanned)
	fmt.Printf("  winners / losers  %d / %d\n", st.Winners, st.Losers)
	fmt.Printf("  records redone    %d (+%d loser records discarded, %d DDL)\n",
		st.RecordsRedone, st.RecordsDiscarded, st.DDLReplayed)
	fmt.Println("tables:")
	for _, tbl := range e.Catalog().Tables() {
		rows := 0
		err := e.Exec(func(tx *core.Tx) error {
			return tx.ScanTable(tbl.Name, func(record.Row) bool { rows++; return true })
		})
		exitOn(err)
		fmt.Printf("  %-24s %d rows\n", tbl.Name, rows)
	}
	exitOn(e.Checkpoint())
	fmt.Println("checkpointed; log truncated")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "slibench:", err)
		os.Exit(1)
	}
}
