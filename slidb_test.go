package slidb_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"slidb"
)

// TestPublicAPIEndToEnd exercises the public API exactly as the README's
// quickstart does: open, create schema, insert, transfer, read back, and
// inspect statistics — once with SLI off and once with it on.
func TestPublicAPIEndToEnd(t *testing.T) {
	for _, sli := range []bool{false, true} {
		t.Run(fmt.Sprintf("sli=%v", sli), func(t *testing.T) {
			db := slidb.Open(slidb.Config{Agents: 4, SLI: sli})
			defer db.Close()

			schema := slidb.MustSchema(
				slidb.Column{Name: "id", Type: slidb.TypeInt},
				slidb.Column{Name: "name", Type: slidb.TypeString},
				slidb.Column{Name: "balance", Type: slidb.TypeFloat},
			)
			if err := db.CreateTable("accounts", schema, []string{"id"}); err != nil {
				t.Fatal(err)
			}
			if err := db.CreateIndex("accounts_by_name", "accounts", []string{"name"}, false); err != nil {
				t.Fatal(err)
			}

			if err := db.Exec(func(tx *slidb.Tx) error {
				for i := 1; i <= 10; i++ {
					row := slidb.Row{slidb.Int(int64(i)), slidb.String(fmt.Sprintf("user-%d", i)), slidb.Float(100)}
					if err := tx.Insert("accounts", row); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Concurrent transfers.
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						from := int64(1 + (w+i)%10)
						to := int64(1 + (w+i+3)%10)
						if from == to {
							continue
						}
						err := db.Exec(func(tx *slidb.Tx) error {
							lo, hi := from, to
							if lo > hi {
								lo, hi = hi, lo
							}
							for _, id := range []int64{lo, hi} {
								delta := 5.0
								if id == from {
									delta = -5.0
								}
								if err := tx.Update("accounts", []slidb.Value{slidb.Int(id)}, func(r slidb.Row) (slidb.Row, error) {
									r[2] = slidb.Float(r[2].AsFloat() + delta)
									return r, nil
								}); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()

			// Conservation + index lookups through the public API.
			if err := db.Exec(func(tx *slidb.Tx) error {
				total := 0.0
				if err := tx.ScanTable("accounts", func(r slidb.Row) bool {
					total += r[2].AsFloat()
					return true
				}); err != nil {
					return err
				}
				if total != 1000 {
					return fmt.Errorf("total balance %v, want 1000", total)
				}
				rows, err := tx.LookupIndex("accounts_by_name", slidb.String("user-3"))
				if err != nil {
					return err
				}
				if len(rows) != 1 || rows[0][0].AsInt() != 3 {
					return fmt.Errorf("index lookup returned %v", rows)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Error surface: duplicate key.
			err := db.Exec(func(tx *slidb.Tx) error {
				return tx.Insert("accounts", slidb.Row{slidb.Int(1), slidb.String("dup"), slidb.Float(0)})
			})
			if !errors.Is(err, slidb.ErrDuplicateKey) {
				t.Fatalf("err = %v, want ErrDuplicateKey", err)
			}

			// Application-controlled abort.
			err = db.Exec(func(tx *slidb.Tx) error {
				if err := tx.Delete("accounts", slidb.Int(5)); err != nil {
					return err
				}
				return slidb.Abort
			})
			if !errors.Is(err, slidb.Abort) {
				t.Fatalf("err = %v, want Abort", err)
			}
			if err := db.Exec(func(tx *slidb.Tx) error {
				if _, found, err := tx.Get("accounts", slidb.Int(5)); err != nil || !found {
					return fmt.Errorf("aborted delete leaked (found=%v err=%v)", found, err)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			stats := db.LockStats()
			if stats.TotalAcquires() == 0 || stats.Transactions == 0 {
				t.Fatal("lock statistics empty")
			}
			if sli != db.SLIEnabled() {
				t.Fatal("SLIEnabled does not match configuration")
			}
		})
	}
}

// TestLockHierarchyLevelsExported makes sure the re-exported hierarchy
// levels are usable in Config.
func TestLockHierarchyLevelsExported(t *testing.T) {
	db := slidb.Open(slidb.Config{SLI: true, SLIMinLevel: slidb.LevelTable, Agents: 1})
	defer db.Close()
	if !db.SLIEnabled() {
		t.Fatal("SLI should be enabled")
	}
	_ = []slidb.Type{slidb.TypeInt, slidb.TypeFloat, slidb.TypeString}
	_ = []any{slidb.LevelDatabase, slidb.LevelPage, slidb.LevelRecord}
	if errors.Is(slidb.ErrNotFound, slidb.ErrDeadlock) {
		t.Fatal("sentinel errors must be distinct")
	}
}
