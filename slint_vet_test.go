package slidb_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSlintTreeClean is the CI-parity gate for the slint analyzer suite: it
// builds the vettool the same way the lint job does and asserts that
// go vet -vettool over the whole tree reports nothing. A finding that only
// CI would catch is a finding this test catches first.
func TestSlintTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree vet sweep; skipped in -short mode")
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "cmd", "slint")); err != nil {
		t.Fatalf("cannot locate cmd/slint from %s: %v", root, err)
	}

	printPath := exec.Command("go", "run", "./cmd/slint", "-print-path")
	printPath.Dir = root
	printPath.Stderr = os.Stderr
	out, err := printPath.Output()
	if err != nil {
		t.Fatalf("slint -print-path: %v", err)
	}
	vettool := strings.TrimSpace(string(out))
	if vettool == "" {
		t.Fatal("slint -print-path printed nothing")
	}

	var diag bytes.Buffer
	vet := exec.Command("go", "vet", "-vettool="+vettool, "./...")
	vet.Dir = root
	vet.Stdout = &diag
	vet.Stderr = &diag
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool reported findings:\n%s", diag.String())
	}
}
