// Package slidb is an embedded transactional storage manager written in pure
// Go, built as a faithful reproduction of the system described in
// "Improving OLTP Scalability using Speculative Lock Inheritance"
// (Johnson, Pandis & Ailamaki, VLDB 2009).
//
// The engine provides hierarchical two-phase locking (database → table →
// page → record), a write-ahead log with group commit, a buffer pool with
// optional simulated I/O latency, heap files, B+tree indexes, and a pool of
// agent threads executing transactions — plus the paper's contribution,
// Speculative Lock Inheritance (SLI): hot share-mode locks are passed
// directly from a committing transaction to the next transaction on the same
// agent thread, bypassing the centralized lock manager and removing it from
// the critical path of short transactions.
//
// # Quick start
//
//	db := slidb.Open(slidb.Config{Agents: 8, SLI: true})
//	defer db.Close()
//
//	schema := slidb.MustSchema(
//		slidb.Column{Name: "id", Type: slidb.TypeInt},
//		slidb.Column{Name: "balance", Type: slidb.TypeFloat},
//	)
//	db.CreateTable("accounts", schema, []string{"id"})
//
//	err := db.Exec(func(tx *slidb.Tx) error {
//		return tx.Insert("accounts", slidb.Row{slidb.Int(1), slidb.Float(100)})
//	})
//
// See the examples directory for complete programs and cmd/slibench for the
// benchmark harness that regenerates the paper's figures.
package slidb

import (
	"slidb/internal/core"
	"slidb/internal/lockmgr"
	"slidb/internal/record"
)

// Engine is the storage manager. Create one with Open.
type Engine = core.Engine

// Config configures an Engine; the zero value is a usable single-threaded,
// SLI-off, in-memory configuration.
type Config = core.Config

// Tx is a transaction handle passed to the function given to Engine.Exec.
type Tx = core.Tx

// Row is one tuple of column values.
type Row = record.Row

// Value is a single dynamically typed column value.
type Value = record.Value

// Column describes one column of a table schema.
type Column = record.Column

// Schema describes the columns of a table.
type Schema = record.Schema

// Type is a column type.
type Type = record.Type

// LockStats is a snapshot of the lock manager's counters (acquisitions by
// level, hot/heritable classification, and SLI outcomes), as returned by
// Engine.LockStats.
type LockStats = lockmgr.StatsSnapshot

// Column types.
const (
	TypeInt    = record.TypeInt
	TypeFloat  = record.TypeFloat
	TypeString = record.TypeString
)

// Lock hierarchy levels, used with Config.SLIMinLevel.
const (
	LevelDatabase = lockmgr.LevelDatabase
	LevelTable    = lockmgr.LevelTable
	LevelPage     = lockmgr.LevelPage
	LevelRecord   = lockmgr.LevelRecord
)

// Errors surfaced by the engine.
var (
	// ErrNotFound is returned by lookups and updates of missing rows.
	ErrNotFound = core.ErrNotFound
	// ErrDuplicateKey is returned when an insert violates a unique key.
	ErrDuplicateKey = core.ErrDuplicateKey
	// ErrDeadlock is returned when a transaction is chosen as a deadlock
	// victim and its retries are exhausted.
	ErrDeadlock = lockmgr.ErrDeadlock
	// Abort lets a transaction body abort without signalling an unexpected
	// failure.
	Abort = core.Abort
)

// Open creates a new engine.
func Open(cfg Config) *Engine { return core.Open(cfg) }

// Int builds an integer value.
func Int(v int64) Value { return record.Int(v) }

// Float builds a floating-point value.
func Float(v float64) Value { return record.Float(v) }

// String builds a string value.
func String(v string) Value { return record.String(v) }

// NewSchema builds a schema from columns, validating names and types.
func NewSchema(cols ...Column) (*Schema, error) { return record.NewSchema(cols...) }

// MustSchema is NewSchema that panics on error, for statically known schemas.
func MustSchema(cols ...Column) *Schema { return record.MustSchema(cols...) }
