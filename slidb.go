// Package slidb is an embedded transactional storage manager written in pure
// Go, built as a faithful reproduction of the system described in
// "Improving OLTP Scalability using Speculative Lock Inheritance"
// (Johnson, Pandis & Ailamaki, VLDB 2009).
//
// The engine provides hierarchical two-phase locking (database → table →
// page → record), a write-ahead log with group commit, a buffer pool with
// optional simulated I/O latency, heap files, B+tree indexes, and a pool of
// agent threads executing transactions — plus the paper's contribution,
// Speculative Lock Inheritance (SLI): hot share-mode locks are passed
// directly from a committing transaction to the next transaction on the same
// agent thread, bypassing the centralized lock manager and removing it from
// the critical path of short transactions.
//
// # Quick start
//
//	db := slidb.Open(slidb.Config{Agents: 8, SLI: true})
//	defer db.Close()
//
//	schema := slidb.MustSchema(
//		slidb.Column{Name: "id", Type: slidb.TypeInt},
//		slidb.Column{Name: "balance", Type: slidb.TypeFloat},
//	)
//	db.CreateTable("accounts", schema, []string{"id"})
//
//	err := db.Exec(func(tx *slidb.Tx) error {
//		return tx.Insert("accounts", slidb.Row{slidb.Int(1), slidb.Float(100)})
//	})
//
// # Durability and crash recovery
//
// Open creates a volatile, in-memory engine — the right choice for
// benchmarks that regenerate the paper's figures. OpenAt instead roots the
// engine at a data directory and makes it durable: the write-ahead log is
// persisted to size-bounded on-disk segment files, each commit is
// acknowledged only after its log records have been fsynced (one sync per
// group-commit batch, shared by every transaction in the batch), and
// reopening the directory after a crash runs an ARIES-style restart —
// analysis of the log tail classifies every transaction by its durable
// outcome record, redo repeats history (every data record and rollback
// compensation record, in log order), and an undo pass completes the
// rollback of transactions interrupted in flight or mid-rollback, resuming
// partially-logged rollbacks from their last durable compensation record.
// Committed transactions always survive; transactions in flight at the
// crash (or aborted) leave no trace.
//
//	db, err := slidb.OpenAt("/var/lib/myapp/data", slidb.Config{Agents: 8})
//	// ... use db exactly as an in-memory engine ...
//	db.Checkpoint() // snapshot the state, truncate old log segments
//	db.Close()
//
// # Scalable commit pipeline
//
// By default a committing transaction holds its locks across the group-
// commit fsync — the paper-faithful baseline. Config knobs decouple
// lock release and agent scheduling from log durability:
// Config.EarlyLockRelease releases a committing transaction's locks
// (applying SLI) as soon as its commit record is appended, and the separate
// Config.EarlyLockReleaseAborts applies the same policy to rollbacks (locks
// released at abort-record append), each shrinking lock hold times by the
// entire flush latency; Config.AsyncCommit lets each agent run ahead of the
// log force with a bounded window of in-flight pre-committed transactions.
// Exec still blocks until the commit is durable; Engine.ExecAsync returns a
// durable-ack future instead. Acks are delivered in commit (LSN) order, so
// an updating transaction that observed another's pre-committed writes is
// never acknowledged before its dependency; a crash between pre-commit and
// the flush rolls the transaction back as a loser on recovery. The one
// anomaly window ELR opens is for read-only transactions: they append no
// log record, never wait on the log, and may therefore observe
// pre-committed data whose durability is still pending — after a crash in
// that window the observed writer is rolled back even though the reader
// already returned. Callers that need a durable read barrier should perform
// the read in an updating transaction (or simply not enable ELR).
//
// Engine.Checkpoint persists a point-in-time snapshot and deletes the log
// segments it covers, bounding both disk usage and the restart work after a
// crash. Engine.RecoveryStats reports what the last OpenAt had to replay.
// See examples/persistence for a complete open → write → crash → recover
// program.
//
// # Observability
//
// Engine.ObsHandler returns an http.Handler serving the engine's metrics in
// the Prometheus text exposition format at /metrics and a JSON trace of the
// slowest recent transactions (with per-category time breakdowns when
// Config.Profile is on) at /debug/slowtx. Engine.Observe exposes the
// underlying registry so embedders can add their own metric families, and
// Engine.LogErr reports whether a write-ahead-log sink error has wedged the
// log (as opposed to commits merely being slow — compare
// Engine.DurableLag). Metrics collection is scrape-time snapshotting of
// counters the engine already maintains: enabling it adds no lock
// acquisition to the transaction commit path. cmd/slidbd wraps all of this
// in a daemon with health/readiness probes and graceful drain; see the
// README's Observability section for the full metric list.
//
// See the examples directory for complete programs and cmd/slibench for the
// benchmark harness that regenerates the paper's figures.
package slidb

import (
	"slidb/internal/core"
	"slidb/internal/lockmgr"
	"slidb/internal/record"
	"slidb/internal/wal"
)

// Engine is the storage manager. Create one with Open.
type Engine = core.Engine

// Config configures an Engine; the zero value is a usable single-threaded,
// SLI-off, in-memory configuration.
type Config = core.Config

// Tx is a transaction handle passed to the function given to Engine.Exec.
type Tx = core.Tx

// Savepoint marks a position inside a transaction; Tx.RollbackTo(sp) rolls
// back every modification made after the mark (compensation-logged, exactly
// like an abort of that span) while the transaction keeps its locks and can
// continue to commit.
type Savepoint = core.Savepoint

// Row is one tuple of column values.
type Row = record.Row

// Value is a single dynamically typed column value.
type Value = record.Value

// Column describes one column of a table schema.
type Column = record.Column

// Schema describes the columns of a table.
type Schema = record.Schema

// Type is a column type.
type Type = record.Type

// LockStats is a snapshot of the lock manager's counters (acquisitions by
// level, hot/heritable classification, and SLI outcomes), as returned by
// Engine.LockStats.
type LockStats = lockmgr.StatsSnapshot

// RecoveryStats describes the restart work an OpenAt call performed, as
// returned by Engine.RecoveryStats.
type RecoveryStats = core.RecoveryStats

// Column types.
const (
	TypeInt    = record.TypeInt
	TypeFloat  = record.TypeFloat
	TypeString = record.TypeString
)

// Lock hierarchy levels, used with Config.SLIMinLevel.
const (
	LevelDatabase = lockmgr.LevelDatabase
	LevelTable    = lockmgr.LevelTable
	LevelPage     = lockmgr.LevelPage
	LevelRecord   = lockmgr.LevelRecord
)

// Errors surfaced by the engine.
var (
	// ErrNotFound is returned by lookups and updates of missing rows.
	ErrNotFound = core.ErrNotFound
	// ErrDuplicateKey is returned when an insert violates a unique key.
	ErrDuplicateKey = core.ErrDuplicateKey
	// ErrDeadlock is returned when a transaction is chosen as a deadlock
	// victim and its retries are exhausted.
	ErrDeadlock = lockmgr.ErrDeadlock
	// Abort lets a transaction body abort without signalling an unexpected
	// failure.
	Abort = core.Abort
	// ErrNotDurable is returned by Checkpoint on engines opened with Open
	// instead of OpenAt.
	ErrNotDurable = core.ErrNotDurable
	// ErrClosed is returned by Exec and ExecAsync on a closed engine,
	// including transactions still queued when Close was called.
	ErrClosed = core.ErrClosed
	// ErrLogFormat is returned by OpenAt when the data directory's log
	// segments or checkpoint were written in an incompatible format version
	// (e.g. by a pre-byte-offset-LSN build). The data is not corrupt — it is
	// simply unreadable by this version, and failing loudly beats silently
	// truncating it as a torn tail.
	ErrLogFormat = wal.ErrLogFormat
	// ErrBadSavepoint is returned by Tx.RollbackTo for a savepoint that is
	// not part of the transaction's current undo chain.
	ErrBadSavepoint = core.ErrBadSavepoint
)

// Open creates a new volatile, in-memory engine. For a durable engine with
// crash recovery, use OpenAt.
func Open(cfg Config) *Engine { return core.Open(cfg) }

// OpenAt opens a durable engine rooted at the data directory dir, creating
// it on first use and running crash recovery over the write-ahead log and
// checkpoint a previous incarnation left behind. Every transaction committed
// by the returned engine is durable once Exec returns; use
// Engine.Checkpoint periodically to truncate the log and bound restart time.
func OpenAt(dir string, cfg Config) (*Engine, error) { return core.OpenAt(dir, cfg) }

// Int builds an integer value.
func Int(v int64) Value { return record.Int(v) }

// Float builds a floating-point value.
func Float(v float64) Value { return record.Float(v) }

// String builds a string value.
func String(v string) Value { return record.String(v) }

// NewSchema builds a schema from columns, validating names and types.
func NewSchema(cols ...Column) (*Schema, error) { return record.NewSchema(cols...) }

// MustSchema is NewSchema that panics on error, for statically known schemas.
func MustSchema(cols ...Column) *Schema { return record.MustSchema(cols...) }
