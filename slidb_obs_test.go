package slidb_test

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"slidb/internal/core"
	"slidb/internal/figures"
	"slidb/internal/obs/obstest"
	"slidb/internal/profiler"
)

// scrape fetches path from the engine's observability handler.
func scrape(e *core.Engine, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	e.ObsHandler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// metricValue extracts the value of an unlabeled sample line from exposition
// output, or -1 if the metric is absent.
func metricValue(exposition, name string) float64 {
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

// TestMetricsScrapeUnderLoad drives the TPC-B workload while concurrently
// scraping /metrics, asserting that every scrape parses as well-formed
// Prometheus exposition output and that the committed counter never goes
// backwards — i.e. concurrent transaction completion never tears a scrape.
// Run under -race this also exercises the wait-free hot-path claims.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	opt := figures.DefaultOptions()
	opt.Duration = 300 * time.Millisecond
	opt.Warmup = 20 * time.Millisecond
	opt.TPCBBranches = 4
	opt.TPCBAccountsPerBranch = 100
	opt.EarlyLockRelease = true
	opt.AsyncCommit = true

	var (
		engCh = make(chan *core.Engine, 1)
		stop  = make(chan struct{})
		wg    sync.WaitGroup
	)
	opt.OnEngine = func(e *core.Engine) { engCh <- e }

	var scrapes atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		e := <-engCh
		var lastCommitted float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := scrape(e, "/metrics")
			body := rec.Body.String()
			if err := obstest.Validate(rec.Body.Bytes()); err != nil {
				t.Errorf("scrape does not validate: %v", err)
				return
			}
			c := metricValue(body, "slidb_txns_committed_total")
			if c < 0 {
				t.Error("scrape missing slidb_txns_committed_total")
				return
			}
			if c < lastCommitted {
				t.Errorf("committed counter went backwards: %v -> %v", lastCommitted, c)
				return
			}
			lastCommitted = c
			scrapes.Add(1)
		}
	}()

	res, es, err := figures.RunWorkload(figures.WLTPCB, opt, true, 4)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("workload committed nothing")
	}
	if es.UndoFailures != 0 {
		t.Fatalf("undo failures: %d", es.UndoFailures)
	}
	if scrapes.Load() == 0 {
		t.Fatal("no scrape completed during the run")
	}
	t.Logf("%d scrapes validated against %d committed transactions", scrapes.Load(), res.Committed)
}

// TestMetricsSurface asserts the stable metric names and full label sets the
// README documents: every profiler category is present even at zero, the
// histogram renders, and /debug/slowtx serves the documented JSON schema
// with per-category breakdowns (profiling is on in figures engines).
func TestMetricsSurface(t *testing.T) {
	opt := figures.DefaultOptions()
	opt.Duration = 150 * time.Millisecond
	opt.Warmup = 10 * time.Millisecond
	opt.TPCBBranches = 2
	opt.TPCBAccountsPerBranch = 50

	var eng *core.Engine
	opt.OnEngine = func(e *core.Engine) { eng = e; e.Observe() }
	res, _, err := figures.RunWorkload(figures.WLTPCB, opt, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("workload committed nothing")
	}
	// The engine is closed once RunWorkload returns; scrapes still work —
	// the counters are snapshots of final state.
	body := scrape(eng, "/metrics").Body.String()

	for _, name := range []string{
		"slidb_txns_committed_total",
		"slidb_txns_aborted_total",
		"slidb_elr_aborts_total",
		"slidb_undo_failures_total",
		"slidb_durable_lag_bytes",
		"slidb_log_wedged",
		"slidb_agents",
		"slidb_lock_acquires_total",
		"slidb_lock_acquires_mode_total",
		"slidb_lock_class_total",
		"slidb_lock_cache_hits_total",
		"slidb_lock_conversions_total",
		"slidb_lock_latch_contended_total",
		"slidb_lock_waits_total",
		"slidb_lock_deadlocks_total",
		"slidb_lock_timeouts_total",
		"slidb_lock_transactions_total",
		"slidb_elr_releases_total",
		"slidb_sli_events_total",
		"slidb_profile_seconds_total",
		"slidb_txn_duration_seconds_bucket",
		"slidb_txn_duration_seconds_count",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	// Every profiler category label must be present, even the zero ones.
	for c := profiler.Category(0); c.String() != "category("+strconv.Itoa(int(c))+")"; c++ {
		want := `slidb_profile_seconds_total{category="` + c.String() + `"}`
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing profiler series %s", want)
		}
	}
	if v := metricValue(body, "slidb_txns_committed_total"); v < float64(res.Committed) {
		t.Errorf("committed metric %v below workload count %d", v, res.Committed)
	}

	rec := scrape(eng, "/debug/slowtx")
	var rep struct {
		Capacity      int     `json:"capacity"`
		WindowSeconds float64 `json:"window_seconds"`
		Slowest       []struct {
			XID              uint64             `json:"xid"`
			Start            time.Time          `json:"start"`
			DurationSeconds  float64            `json:"duration_seconds"`
			Committed        bool               `json:"committed"`
			BreakdownSeconds map[string]float64 `json:"breakdown_seconds"`
		} `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("slowtx JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if rep.Capacity <= 0 || rep.WindowSeconds <= 0 {
		t.Errorf("slowtx header: %+v", rep)
	}
	if len(rep.Slowest) == 0 {
		t.Fatal("no slow transactions traced during the workload")
	}
	for i := 1; i < len(rep.Slowest); i++ {
		if rep.Slowest[i].DurationSeconds > rep.Slowest[i-1].DurationSeconds {
			t.Errorf("slowtx not sorted slowest-first at %d", i)
		}
	}
	slow := rep.Slowest[0]
	if slow.DurationSeconds <= 0 || slow.Start.IsZero() {
		t.Errorf("traced tx malformed: %+v", slow)
	}
	if len(slow.BreakdownSeconds) == 0 {
		t.Error("profiling engine produced a trace with no breakdown")
	}
	for cat := range slow.BreakdownSeconds {
		known := false
		for c := profiler.Category(0); c.String() != "category("+strconv.Itoa(int(c))+")"; c++ {
			if c.String() == cat {
				known = true
				break
			}
		}
		if !known {
			t.Errorf("trace breakdown has unknown category %q", cat)
		}
	}
}
