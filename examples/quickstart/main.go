// Quickstart: open an engine, create a table, write and read a few rows in
// transactions, and print the lock-manager statistics. This is the minimal
// end-to-end tour of the public slidb API.
package main

import (
	"fmt"
	"log"

	"slidb"
)

func main() {
	// Two agent worker threads, Speculative Lock Inheritance enabled.
	db := slidb.Open(slidb.Config{Agents: 2, SLI: true})
	defer db.Close()

	schema := slidb.MustSchema(
		slidb.Column{Name: "id", Type: slidb.TypeInt},
		slidb.Column{Name: "name", Type: slidb.TypeString},
		slidb.Column{Name: "balance", Type: slidb.TypeFloat},
	)
	if err := db.CreateTable("accounts", schema, []string{"id"}); err != nil {
		log.Fatal(err)
	}

	// Insert a few rows in one transaction.
	err := db.Exec(func(tx *slidb.Tx) error {
		for i, name := range []string{"alice", "bob", "carol"} {
			row := slidb.Row{slidb.Int(int64(i + 1)), slidb.String(name), slidb.Float(100)}
			if err := tx.Insert("accounts", row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Transfer money between two accounts atomically.
	err = db.Exec(func(tx *slidb.Tx) error {
		move := func(id int64, delta float64) error {
			return tx.Update("accounts", []slidb.Value{slidb.Int(id)}, func(r slidb.Row) (slidb.Row, error) {
				r[2] = slidb.Float(r[2].AsFloat() + delta)
				return r, nil
			})
		}
		if err := move(1, -25); err != nil {
			return err
		}
		return move(2, +25)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Read everything back.
	err = db.Exec(func(tx *slidb.Tx) error {
		return tx.ScanTable("accounts", func(r slidb.Row) bool {
			fmt.Printf("account %d (%s): %.2f\n", r[0].AsInt(), r[1].AsString(), r[2].AsFloat())
			return true
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	stats := db.LockStats()
	fmt.Printf("\nlock acquisitions: %d (%.1f per transaction), SLI passed/reclaimed: %d/%d\n",
		stats.TotalAcquires(), stats.LocksPerTransaction(), stats.SLIPassed, stats.SLIReclaimed)
}
