// Telecom: a Home-Location-Register style application modelled on the
// workload that motivates the paper (NDBB/TM1). It stores subscribers and
// their call-forwarding rules, then simulates a burst of lookups and location
// updates from many concurrent handsets — the "many extremely short
// transactions" pattern where the lock manager becomes the bottleneck and
// SLI pays off.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"slidb"
)

const subscribers = 5000

func main() {
	db := slidb.Open(slidb.Config{Agents: 8, SLI: true})
	defer db.Close()

	setup(db)

	// Simulate 8 cell towers handling calls concurrently.
	var lookups, locationUpdates, misses int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for tower := 0; tower < 8; tower++ {
		wg.Add(1)
		go func(tower int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tower)))
			for i := 0; i < 3000; i++ {
				sid := int64(1 + rng.Intn(subscribers))
				if rng.Float64() < 0.8 {
					// Route a call: look up the subscriber and any forwarding rule.
					err := db.Exec(func(tx *slidb.Tx) error {
						if _, found, err := tx.Get("subscriber", slidb.Int(sid)); err != nil || !found {
							return errOr(err, errors.New("missing subscriber"))
						}
						_, found, err := tx.Get("call_forwarding", slidb.Int(sid))
						if err != nil {
							return err
						}
						if !found {
							mu.Lock()
							misses++
							mu.Unlock()
						}
						return nil
					})
					if err != nil {
						log.Fatal(err)
					}
					mu.Lock()
					lookups++
					mu.Unlock()
				} else {
					// The handset moved: record its new location.
					err := db.Exec(func(tx *slidb.Tx) error {
						return tx.Update("subscriber", []slidb.Value{slidb.Int(sid)}, func(r slidb.Row) (slidb.Row, error) {
							r[2] = slidb.Int(int64(tower))
							return r, nil
						})
					})
					if err != nil {
						log.Fatal(err)
					}
					mu.Lock()
					locationUpdates++
					mu.Unlock()
				}
			}
		}(tower)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats := db.LockStats()
	total := lookups + locationUpdates
	fmt.Printf("handled %d HLR requests in %v (%.0f req/s): %d call routings (%d unforwarded), %d location updates\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), lookups, misses, locationUpdates)
	fmt.Printf("lock manager: %.1f locks/transaction, %d latch collisions, SLI passed %d / reclaimed %d\n",
		stats.LocksPerTransaction(), stats.LatchContended, stats.SLIPassed, stats.SLIReclaimed)
}

func setup(db *slidb.Engine) {
	subscriber := slidb.MustSchema(
		slidb.Column{Name: "s_id", Type: slidb.TypeInt},
		slidb.Column{Name: "sub_nbr", Type: slidb.TypeString},
		slidb.Column{Name: "location", Type: slidb.TypeInt},
	)
	forwarding := slidb.MustSchema(
		slidb.Column{Name: "s_id", Type: slidb.TypeInt},
		slidb.Column{Name: "forward_to", Type: slidb.TypeString},
	)
	if err := db.CreateTable("subscriber", subscriber, []string{"s_id"}); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateTable("call_forwarding", forwarding, []string{"s_id"}); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for lo := 1; lo <= subscribers; lo += 1000 {
		hi := lo + 999
		if hi > subscribers {
			hi = subscribers
		}
		err := db.Exec(func(tx *slidb.Tx) error {
			for s := lo; s <= hi; s++ {
				if err := tx.Insert("subscriber", slidb.Row{
					slidb.Int(int64(s)), slidb.String(fmt.Sprintf("%015d", s)), slidb.Int(0),
				}); err != nil {
					return err
				}
				if rng.Float64() < 0.25 {
					if err := tx.Insert("call_forwarding", slidb.Row{
						slidb.Int(int64(s)), slidb.String(fmt.Sprintf("%015d", rng.Intn(subscribers)+1)),
					}); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}
}

func errOr(err, fallback error) error {
	if err != nil {
		return err
	}
	return fallback
}
