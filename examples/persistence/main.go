// Command persistence demonstrates slidb's durability subsystem: it opens a
// disk-backed engine with slidb.OpenAt, commits some transfers, simulates a
// crash by abandoning the engine without Close (in-flight and unflushed
// state is lost, exactly as in a process kill), reopens the same directory,
// and shows that recovery brought back every committed transaction and none
// of the aborted ones. Finally it checkpoints, which truncates the
// write-ahead log so the next open replays (almost) nothing.
//
// Run it twice to watch the second process recover the first one's data:
//
//	go run ./examples/persistence        # uses ./slidb-data by default
//	go run ./examples/persistence /tmp/mydata
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"slidb"
)

func main() {
	dir := "slidb-data"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}

	// --- first incarnation: create, write, "crash" -----------------------
	db, err := slidb.OpenAt(dir, slidb.Config{Agents: 4})
	if errors.Is(err, slidb.ErrLogFormat) {
		log.Fatalf("%v\n%s was written by an older slidb build; delete it (or point this example at a fresh directory) and re-run", err, dir)
	}
	if err != nil {
		log.Fatal(err)
	}
	report("opened", db)

	schema := slidb.MustSchema(
		slidb.Column{Name: "id", Type: slidb.TypeInt},
		slidb.Column{Name: "balance", Type: slidb.TypeInt},
	)
	if len(db.Catalog().Tables()) == 0 {
		if err := db.CreateTable("accounts", schema, []string{"id"}); err != nil {
			log.Fatal(err)
		}
		if err := db.Exec(func(tx *slidb.Tx) error {
			for id := int64(0); id < 4; id++ {
				if err := tx.Insert("accounts", slidb.Row{slidb.Int(id), slidb.Int(100)}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("created 4 accounts with balance 100")
	}

	// A committed transfer: durable the moment Exec returns nil.
	if err := db.Exec(func(tx *slidb.Tx) error {
		return move(tx, 0, 1, 25)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed: move 25 from account 0 to account 1")

	// An aborted transfer: its writes happen, then the transaction bails.
	errBail := errors.New("changed my mind")
	if err := db.Exec(func(tx *slidb.Tx) error {
		if err := move(tx, 2, 3, 999); err != nil {
			return err
		}
		return errBail // everything this transaction did is rolled back
	}); !errors.Is(err, errBail) {
		log.Fatal(err)
	}
	fmt.Println("aborted:   move 999 from account 2 to account 3")

	printBalances(db)

	// --- the crash -------------------------------------------------------
	// No Close: the engine object is simply dropped, like a SIGKILL. The
	// write-ahead log segments in dir are all that survives.
	db = nil
	fmt.Println("\n*** crash (engine abandoned without Close) ***")

	// --- second incarnation: recover -------------------------------------
	db2, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	report("recovered", db2)
	printBalances(db2)

	// Checkpoint: snapshot the state and truncate the log, so the next open
	// does not replay this history again.
	if err := db2.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpointed: log truncated, next open starts from the snapshot")
}

// move transfers amount between two accounts.
func move(tx *slidb.Tx, from, to, amount int64) error {
	add := func(id, delta int64) error {
		return tx.Update("accounts", []slidb.Value{slidb.Int(id)}, func(r slidb.Row) (slidb.Row, error) {
			r[1] = slidb.Int(r[1].AsInt() + delta)
			return r, nil
		})
	}
	if err := add(from, -amount); err != nil {
		return err
	}
	return add(to, amount)
}

func report(what string, db *slidb.Engine) {
	st := db.RecoveryStats()
	fmt.Printf("%s %s: checkpoint LSN %d, %d log records scanned, %d winners redone, %d losers discarded\n",
		what, db.DataDir(), st.CheckpointLSN, st.LogRecordsScanned, st.Winners, st.Losers)
}

func printBalances(db *slidb.Engine) {
	err := db.Exec(func(tx *slidb.Tx) error {
		return tx.ScanTable("accounts", func(r slidb.Row) bool {
			fmt.Printf("  account %d: balance %d\n", r[0].AsInt(), r[1].AsInt())
			return true
		})
	})
	if err != nil {
		log.Fatal(err)
	}
}
