// Banking: a TPC-B style deposits/withdrawals application. It demonstrates
// multi-row update transactions, the money-conservation invariant, and the
// effect of SLI on a short update-heavy workload by running the same burst
// with SLI off and on.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"slidb"
)

const (
	branches           = 20
	accountsPerBranch  = 500
	tellersPerBranch   = 10
	workers            = 8
	transfersPerWorker = 3000
)

func main() {
	for _, sli := range []bool{false, true} {
		tps, stats := run(sli)
		mode := "baseline"
		if sli {
			mode = "with SLI"
		}
		fmt.Printf("%-9s  %8.0f transactions/s   lock-manager acquisitions: %8d   latch collisions: %6d\n",
			mode, tps, stats.TotalAcquires(), stats.LatchContended)
	}
}

func run(sli bool) (float64, slidb.LockStats) {
	db := slidb.Open(slidb.Config{Agents: workers, SLI: sli})
	defer db.Close()
	load(db)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfersPerWorker; i++ {
				branch := int64(1 + rng.Intn(branches))
				teller := (branch-1)*tellersPerBranch + int64(rng.Intn(tellersPerBranch)) + 1
				account := (branch-1)*accountsPerBranch + int64(rng.Intn(accountsPerBranch)) + 1
				delta := float64(rng.Intn(2000)-1000) / 100
				err := db.Exec(func(tx *slidb.Tx) error {
					add := func(table string, id int64, col int, d float64) error {
						return tx.Update(table, []slidb.Value{slidb.Int(id)}, func(r slidb.Row) (slidb.Row, error) {
							r[col] = slidb.Float(r[col].AsFloat() + d)
							return r, nil
						})
					}
					if err := add("accounts", account, 2, delta); err != nil {
						return err
					}
					if err := add("tellers", teller, 2, delta); err != nil {
						return err
					}
					return add("branches", branch, 1, delta)
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verify the invariant: the three balance sums must agree.
	var branchSum, accountSum float64
	err := db.Exec(func(tx *slidb.Tx) error {
		if err := tx.ScanTable("branches", func(r slidb.Row) bool { branchSum += r[1].AsFloat(); return true }); err != nil {
			return err
		}
		return tx.ScanTable("accounts", func(r slidb.Row) bool { accountSum += r[2].AsFloat(); return true })
	})
	if err != nil {
		log.Fatal(err)
	}
	if diff := branchSum - accountSum; diff > 1e-6 || diff < -1e-6 {
		log.Fatalf("money not conserved: branches %.2f vs accounts %.2f", branchSum, accountSum)
	}

	total := float64(workers * transfersPerWorker)
	return total / elapsed.Seconds(), db.LockStats()
}

func load(db *slidb.Engine) {
	balance := func(name string) slidb.Column { return slidb.Column{Name: name, Type: slidb.TypeFloat} }
	id := func(name string) slidb.Column { return slidb.Column{Name: name, Type: slidb.TypeInt} }

	must(db.CreateTable("branches", slidb.MustSchema(id("b_id"), balance("b_balance")), []string{"b_id"}))
	must(db.CreateTable("tellers", slidb.MustSchema(id("t_id"), id("b_id"), balance("t_balance")), []string{"t_id"}))
	must(db.CreateTable("accounts", slidb.MustSchema(id("a_id"), id("b_id"), balance("a_balance")), []string{"a_id"}))

	for b := int64(1); b <= branches; b++ {
		bID := b
		must(db.Exec(func(tx *slidb.Tx) error {
			if err := tx.Insert("branches", slidb.Row{slidb.Int(bID), slidb.Float(0)}); err != nil {
				return err
			}
			for t := int64(0); t < tellersPerBranch; t++ {
				if err := tx.Insert("tellers", slidb.Row{slidb.Int((bID-1)*tellersPerBranch + t + 1), slidb.Int(bID), slidb.Float(0)}); err != nil {
					return err
				}
			}
			for a := int64(0); a < accountsPerBranch; a++ {
				if err := tx.Insert("accounts", slidb.Row{slidb.Int((bID-1)*accountsPerBranch + a + 1), slidb.Int(bID), slidb.Float(0)}); err != nil {
					return err
				}
			}
			return nil
		}))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
