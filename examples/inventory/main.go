// Inventory: a TPC-C-flavoured order-entry application. It demonstrates
// secondary indexes, range scans, multi-table transactions with rollback on
// business-rule violations (out-of-stock orders), and concurrent order entry
// against a shared product catalog.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"slidb"
)

const (
	products       = 500
	customers      = 200
	orderClerks    = 6
	ordersPerClerk = 2000
)

var errOutOfStock = errors.New("out of stock")

func main() {
	db := slidb.Open(slidb.Config{Agents: orderClerks, SLI: true})
	defer db.Close()
	setup(db)

	var placed, rejected atomic.Int64
	var orderSeq atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for clerk := 0; clerk < orderClerks; clerk++ {
		wg.Add(1)
		go func(clerk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(clerk)))
			for i := 0; i < ordersPerClerk; i++ {
				customer := int64(1 + rng.Intn(customers))
				product := int64(1 + rng.Intn(products))
				qty := int64(1 + rng.Intn(5))
				oid := orderSeq.Add(1)
				err := db.Exec(func(tx *slidb.Tx) error {
					// Check and decrement stock.
					if err := tx.Update("stock", []slidb.Value{slidb.Int(product)}, func(r slidb.Row) (slidb.Row, error) {
						if r[1].AsInt() < qty {
							return nil, errOutOfStock
						}
						r[1] = slidb.Int(r[1].AsInt() - qty)
						return r, nil
					}); err != nil {
						return err
					}
					// Record the order.
					return tx.Insert("orders", slidb.Row{
						slidb.Int(oid), slidb.Int(customer), slidb.Int(product), slidb.Int(qty),
					})
				})
				switch {
				case err == nil:
					placed.Add(1)
				case errors.Is(err, errOutOfStock):
					rejected.Add(1)
				default:
					log.Fatal(err)
				}
			}
		}(clerk)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Report: orders per customer via the secondary index, and totals.
	var busiestCustomer int64
	var busiestCount int
	err := db.Exec(func(tx *slidb.Tx) error {
		for c := int64(1); c <= customers; c++ {
			rows, err := tx.LookupIndex("orders_by_customer", slidb.Int(c))
			if err != nil {
				return err
			}
			if len(rows) > busiestCount {
				busiestCount = len(rows)
				busiestCustomer = c
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("placed %d orders (%d rejected for stock) in %v — %.0f orders/s\n",
		placed.Load(), rejected.Load(), elapsed.Round(time.Millisecond),
		float64(placed.Load())/elapsed.Seconds())
	fmt.Printf("busiest customer: #%d with %d orders\n", busiestCustomer, busiestCount)
	stats := db.LockStats()
	fmt.Printf("lock manager: %d acquisitions, SLI passed %d / reclaimed %d / invalidated %d\n",
		stats.TotalAcquires(), stats.SLIPassed, stats.SLIReclaimed, stats.SLIInvalidated)
}

func setup(db *slidb.Engine) {
	must(db.CreateTable("stock", slidb.MustSchema(
		slidb.Column{Name: "product_id", Type: slidb.TypeInt},
		slidb.Column{Name: "quantity", Type: slidb.TypeInt},
		slidb.Column{Name: "name", Type: slidb.TypeString},
	), []string{"product_id"}))
	must(db.CreateTable("orders", slidb.MustSchema(
		slidb.Column{Name: "order_id", Type: slidb.TypeInt},
		slidb.Column{Name: "customer_id", Type: slidb.TypeInt},
		slidb.Column{Name: "product_id", Type: slidb.TypeInt},
		slidb.Column{Name: "quantity", Type: slidb.TypeInt},
	), []string{"order_id"}))
	must(db.CreateIndex("orders_by_customer", "orders", []string{"customer_id"}, false))

	must(db.Exec(func(tx *slidb.Tx) error {
		for p := 1; p <= products; p++ {
			if err := tx.Insert("stock", slidb.Row{
				slidb.Int(int64(p)), slidb.Int(10000), slidb.String(fmt.Sprintf("product-%03d", p)),
			}); err != nil {
				return err
			}
		}
		return nil
	}))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
